// kvstore: a durable key-value store whose contents persist across process
// runs through an NVRAM image file — the paper's "restart and resume"
// scenario end to end.
//
//	go run ./examples/kvstore set 1 100
//	go run ./examples/kvstore set 2 200
//	go run ./examples/kvstore get 1
//	go run ./examples/kvstore del 1
//	go run ./examples/kvstore list
//
// State lives in kvstore.img in the working directory (override with
// -image). Each run loads the image (running recovery), applies one
// command, and saves the image back.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"

	"repro/logfree"
)

func main() {
	image := flag.String("image", "kvstore.img", "NVRAM image file")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: kvstore [-image file] {set k v | get k | del k | list}")
		os.Exit(2)
	}

	cfg := logfree.Config{Size: 32 << 20, MaxThreads: 2, LinkCache: true}

	var rt *logfree.Runtime
	var store *logfree.BST
	if _, err := os.Stat(*image); err == nil {
		rt, err = logfree.Load(*image, cfg)
		if err != nil {
			log.Fatal(err)
		}
		store, err = rt.OpenBST("kv")
		if err != nil {
			log.Fatal(err)
		}
	} else {
		rt, err = logfree.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		store, err = rt.CreateBST(rt.Handle(0), "kv")
		if err != nil {
			log.Fatal(err)
		}
	}
	h := rt.Handle(0)

	atoi := func(s string) uint64 {
		n, err := strconv.ParseUint(s, 10, 64)
		if err != nil || n < logfree.MinKey {
			log.Fatalf("kvstore: bad number %q", s)
		}
		return n
	}

	switch args[0] {
	case "set":
		if len(args) != 3 {
			log.Fatal("set needs key and value")
		}
		k, v := atoi(args[1]), atoi(args[2])
		if store.Insert(h, k, v) {
			fmt.Printf("set %d = %d\n", k, v)
		} else {
			store.Delete(h, k)
			store.Insert(h, k, v)
			fmt.Printf("overwrote %d = %d\n", k, v)
		}
	case "get":
		if len(args) != 2 {
			log.Fatal("get needs a key")
		}
		k := atoi(args[1])
		if v, ok := store.Search(h, k); ok {
			fmt.Printf("%d = %d\n", k, v)
		} else {
			fmt.Printf("%d not found\n", k)
		}
	case "del":
		if len(args) != 2 {
			log.Fatal("del needs a key")
		}
		k := atoi(args[1])
		if v, ok := store.Delete(h, k); ok {
			fmt.Printf("deleted %d (was %d)\n", k, v)
		} else {
			fmt.Printf("%d not found\n", k)
		}
	case "list":
		n := 0
		store.Range(h, func(k, v uint64) bool {
			fmt.Printf("%d = %d\n", k, v)
			n++
			return true
		})
		fmt.Printf("(%d keys)\n", n)
	default:
		log.Fatalf("kvstore: unknown command %q", args[0])
	}

	if err := rt.Save(*image); err != nil {
		log.Fatal(err)
	}
}
