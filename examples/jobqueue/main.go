// jobqueue: a durable work queue — producers enqueue jobs, workers dequeue
// and process them, and a power failure in the middle loses nothing: every
// job is either still queued, or was provably handed to a worker. This is
// the Michael-Scott queue with link-and-persist (see internal/core/queue.go),
// the paper's techniques applied beyond the set abstraction.
package main

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"

	"repro/logfree"
)

const (
	producers = 4
	consumers = 3
	jobsPer   = 500
)

func main() {
	rt, err := logfree.New(
		logfree.WithSize(64<<20),
		logfree.WithMaxThreads(producers+consumers+1),
		logfree.WithLinkCache(true),
	)
	if err != nil {
		log.Fatal(err)
	}
	q, err := rt.Queue(rt.Handle(0), "jobs")
	if err != nil {
		log.Fatal(err)
	}

	// Producers enqueue; consumers process about half before the "outage".
	var wg sync.WaitGroup
	var processed atomic.Uint64
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			h := rt.Handle(p)
			for j := 0; j < jobsPer; j++ {
				q.Enqueue(h, uint64(p)<<32|uint64(j))
			}
		}(p)
	}
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			h := rt.Handle(producers + c)
			for processed.Load() < producers*jobsPer/2 {
				if _, ok := q.Dequeue(h); ok {
					processed.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()
	rt.Drain()
	done := processed.Load()
	remaining := q.Len(rt.Handle(0))
	fmt.Printf("before crash: %d jobs processed, %d queued\n", done, remaining)

	// Power failure mid-shift.
	rt2, err := rt.SimulateCrash()
	if err != nil {
		log.Fatal(err)
	}
	q2, err := rt2.Queue(rt2.Handle(0), "jobs")
	if err != nil {
		log.Fatal(err)
	}
	h := rt2.Handle(0)
	got := q2.Len(h)
	fmt.Printf("after recovery: %d jobs queued (recovery: %v)\n",
		got, rt2.RecoveryStats().Duration)
	if uint64(got)+done != producers*jobsPer {
		log.Fatalf("jobs lost or duplicated: %d processed + %d queued != %d",
			done, got, producers*jobsPer)
	}

	// Finish the backlog after the restart.
	drained := 0
	for {
		if _, ok := q2.Dequeue(h); !ok {
			break
		}
		drained++
	}
	fmt.Printf("drained %d jobs after restart — none lost, none duplicated\n", drained)
}
