// jobqueue: a durable work queue — producers enqueue jobs, workers dequeue
// and process them, and a power failure in the middle loses nothing: every
// job is either still queued, or was provably handed to a worker. This is
// the Michael-Scott queue with link-and-persist (see internal/core/queue.go),
// the paper's techniques applied beyond the set abstraction.
package main

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"

	"repro/logfree"
)

const (
	producers = 4
	consumers = 3
	jobsPer   = 500
)

func main() {
	rt, err := logfree.New(
		logfree.WithSize(64<<20),
		logfree.WithLinkCache(true),
	)
	if err != nil {
		log.Fatal(err)
	}
	q, err := rt.Queue("jobs")
	if err != nil {
		log.Fatal(err)
	}

	// Producers enqueue; consumers process about half before the "outage".
	var wg sync.WaitGroup
	var processed atomic.Uint64
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for j := 0; j < jobsPer; j++ {
				q.Enqueue(uint64(p)<<32 | uint64(j))
			}
		}(p)
	}
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for processed.Load() < producers*jobsPer/2 {
				if _, ok := q.Dequeue(); ok {
					processed.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()
	rt.Drain()
	done := processed.Load()
	remaining := q.Len()
	fmt.Printf("before crash: %d jobs processed, %d queued\n", done, remaining)

	// Power failure mid-shift.
	rt2, err := rt.SimulateCrash()
	if err != nil {
		log.Fatal(err)
	}
	q2, err := rt2.Queue("jobs")
	if err != nil {
		log.Fatal(err)
	}
	got := q2.Len()
	fmt.Printf("after recovery: %d jobs queued (recovery: %v)\n",
		got, rt2.RecoveryStats().Duration)
	if uint64(got)+done != producers*jobsPer {
		log.Fatalf("jobs lost or duplicated: %d processed + %d queued != %d",
			done, got, producers*jobsPer)
	}

	// Finish the backlog after the restart.
	drained := 0
	for {
		if _, ok := q2.Dequeue(); !ok {
			break
		}
		drained++
	}
	fmt.Printf("drained %d jobs after restart — none lost, none duplicated\n", drained)
}
