// sessionstore: a durable web-session store — the kind of small, hot,
// update-heavy structure the paper's introduction motivates. Two durable
// structures share one NVRAM runtime: a hash table mapping session id →
// user, and a skip list ordered by expiry time for cheap expiration sweeps.
// Eight goroutines churn sessions concurrently; then the machine "dies" and
// the store comes back with every completed login intact.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"

	"repro/logfree"
)

const (
	workers           = 8
	sessionsPerWorker = 500
)

func main() {
	rt, err := logfree.New(
		logfree.WithSize(128<<20),
		logfree.WithMaxThreads(workers),
		logfree.WithLinkCache(true),
	)
	if err != nil {
		log.Fatal(err)
	}
	h0 := rt.Handle(0)
	sessions, err := rt.HashTable(h0, "sessions", 4096)
	if err != nil {
		log.Fatal(err)
	}
	byExpiry, err := rt.SkipList(h0, "by-expiry")
	if err != nil {
		log.Fatal(err)
	}

	// Concurrent login/logout churn. Session ids partition by worker; the
	// expiry index is shared and contended.
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := rt.Handle(w)
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < sessionsPerWorker; i++ {
				sid := uint64(w)<<32 | uint64(i) + 1
				expiry := uint64(1_000_000) + uint64(rng.Intn(86_400))<<20 | sid&0xFFFFF
				sessions.Insert(h, sid, uint64(w)*10_000+uint64(i))
				byExpiry.Insert(h, expiry, sid)
				if i%3 == 0 { // a third of the sessions log out again
					sessions.Delete(h, sid)
					byExpiry.Delete(h, expiry)
				}
			}
		}(w)
	}
	wg.Wait()
	fmt.Printf("live sessions before crash: %d (expiry index: %d)\n",
		sessions.Len(h0), byExpiry.Len(h0))

	// Expire the 100 oldest sessions via the ordered index.
	type pair struct{ exp, sid uint64 }
	var oldest []pair
	byExpiry.Range(h0, func(exp, sid uint64) bool {
		oldest = append(oldest, pair{exp, sid})
		return len(oldest) < 100
	})
	for _, p := range oldest {
		sessions.Delete(h0, p.sid)
		byExpiry.Delete(h0, p.exp)
	}
	fmt.Printf("expired %d sessions; live: %d\n", len(oldest), sessions.Len(h0))
	// Flush the link cache so "completed" means durable (§4.1) before the
	// deliberate power failure; without this, the last few buffered updates
	// would be legitimately lost (their callers' operations are not
	// considered complete until flushed).
	rt.Drain()
	want := sessions.Len(h0)

	// Power failure + recovery.
	rt2, err := rt.SimulateCrash()
	if err != nil {
		log.Fatal(err)
	}
	sessions2, err := rt2.HashTable(rt2.Handle(0), "sessions", 4096)
	if err != nil {
		log.Fatal(err)
	}
	byExpiry2, err := rt2.SkipList(rt2.Handle(0), "by-expiry")
	if err != nil {
		log.Fatal(err)
	}
	h := rt2.Handle(0)
	got := sessions2.Len(h)
	fmt.Printf("live sessions after recovery: %d (expiry index: %d)\n",
		got, byExpiry2.Len(h))
	if got != want {
		log.Fatalf("lost sessions in the crash: want %d, got %d", want, got)
	}
	for _, rep := range rt2.RecoveryReports() {
		fmt.Printf("  recovered %v %q\n", rep.Kind, rep.Name)
	}
	st := rt2.RecoveryStats()
	fmt.Printf("  one combined sweep: %v, %d leaked objects freed\n", st.Duration, st.Leaked)
	fmt.Println("every completed login survived the power failure")
}
