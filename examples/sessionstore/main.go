// sessionstore: a durable web-session store — the kind of small, hot,
// update-heavy structure the paper's introduction motivates. Two durable
// structures share one NVRAM runtime: a hash table mapping session id →
// user, and a skip list ordered by expiry time for cheap expiration sweeps.
// Eight goroutines churn sessions concurrently; then the machine "dies" and
// the store comes back with every completed login intact.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"

	"repro/logfree"
)

const (
	workers           = 8
	sessionsPerWorker = 500
)

func main() {
	rt, err := logfree.New(
		logfree.WithSize(128<<20),
		logfree.WithLinkCache(true),
	)
	if err != nil {
		log.Fatal(err)
	}
	sessions, err := rt.HashTable("sessions", 4096)
	if err != nil {
		log.Fatal(err)
	}
	byExpiry, err := rt.SkipList("by-expiry")
	if err != nil {
		log.Fatal(err)
	}

	// Concurrent login/logout churn. Session ids partition by worker; the
	// expiry index is shared and contended. Each worker pins one session
	// (WithSession) to skip the pool round-trip in its tight loop — plain
	// calls would be equally correct.
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s, err := rt.Session()
			if err != nil {
				log.Fatal(err)
			}
			defer s.Close()
			mySessions, myExpiry := sessions.WithSession(s), byExpiry.WithSession(s)
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < sessionsPerWorker; i++ {
				sid := uint64(w)<<32 | uint64(i) + 1
				expiry := uint64(1_000_000) + uint64(rng.Intn(86_400))<<20 | sid&0xFFFFF
				mySessions.Insert(sid, uint64(w)*10_000+uint64(i))
				myExpiry.Insert(expiry, sid)
				if i%3 == 0 { // a third of the sessions log out again
					mySessions.Delete(sid)
					myExpiry.Delete(expiry)
				}
			}
		}(w)
	}
	wg.Wait()
	fmt.Printf("live sessions before crash: %d (expiry index: %d)\n",
		sessions.Len(), byExpiry.Len())

	// Expire the 100 oldest sessions via the ordered index.
	type pair struct{ exp, sid uint64 }
	var oldest []pair
	for exp, sid := range byExpiry.All() {
		oldest = append(oldest, pair{exp, sid})
		if len(oldest) >= 100 {
			break
		}
	}
	for _, p := range oldest {
		sessions.Delete(p.sid)
		byExpiry.Delete(p.exp)
	}
	fmt.Printf("expired %d sessions; live: %d\n", len(oldest), sessions.Len())
	// Flush the link cache so "completed" means durable (§4.1) before the
	// deliberate power failure; without this, the last few buffered updates
	// would be legitimately lost (their callers' operations are not
	// considered complete until flushed).
	rt.Drain()
	want := sessions.Len()

	// Power failure + recovery.
	rt2, err := rt.SimulateCrash()
	if err != nil {
		log.Fatal(err)
	}
	sessions2, err := rt2.HashTable("sessions", 4096)
	if err != nil {
		log.Fatal(err)
	}
	byExpiry2, err := rt2.SkipList("by-expiry")
	if err != nil {
		log.Fatal(err)
	}
	got := sessions2.Len()
	fmt.Printf("live sessions after recovery: %d (expiry index: %d)\n",
		got, byExpiry2.Len())
	if got != want {
		log.Fatalf("lost sessions in the crash: want %d, got %d", want, got)
	}
	for _, rep := range rt2.RecoveryReports() {
		fmt.Printf("  recovered %v %q\n", rep.Kind, rep.Name)
	}
	st := rt2.RecoveryStats()
	fmt.Printf("  one combined sweep: %v, %d leaked objects freed\n", st.Duration, st.Leaked)
	fmt.Println("every completed login survived the power failure")
}
