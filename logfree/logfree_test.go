package logfree

import (
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"
)

func newRT(t *testing.T, opts ...Option) *Runtime {
	t.Helper()
	rt, err := New(append([]Option{WithSize(64 << 20), WithMaxThreads(8)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func TestOpenOrCreateAllKinds(t *testing.T) {
	rt := newRT(t)
	h := rt.Handle(0)
	var sets []Set
	l, err := rt.List(h, "l")
	if err != nil {
		t.Fatal(err)
	}
	ht, err := rt.HashTable(h, "h", 64)
	if err != nil {
		t.Fatal(err)
	}
	sl, err := rt.SkipList(h, "s")
	if err != nil {
		t.Fatal(err)
	}
	bt, err := rt.BST(h, "b")
	if err != nil {
		t.Fatal(err)
	}
	sets = append(sets, l, ht, sl, bt)
	for i, s := range sets {
		k := uint64(i*100 + 1)
		if !s.Insert(h, k, k*2) {
			t.Fatalf("set %d: insert failed", i)
		}
		if v, ok := s.Search(h, k); !ok || v != k*2 {
			t.Fatalf("set %d: Search = %d,%v", i, v, ok)
		}
	}
	// Reopen by name: the same call is open-or-create.
	if _, err := rt.List(h, "l"); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.HashTable(h, "h", 64); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.SkipList(h, "s"); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.BST(h, "b"); err != nil {
		t.Fatal(err)
	}
	// The reopened veneer sees the same data.
	l2, _ := rt.List(h, "l")
	if v, ok := l2.Search(h, 1); !ok || v != 2 {
		t.Fatalf("reopened list Search = %d,%v", v, ok)
	}
}

func TestOpenWrongKindRejected(t *testing.T) {
	rt := newRT(t)
	h := rt.Handle(0)
	if _, err := rt.List(h, "x"); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.BST(h, "x"); !errors.Is(err, ErrKind) {
		t.Fatalf("wrong-kind open: %v, want ErrKind", err)
	}
	if _, err := rt.OpenOrCreate(h, "x", Spec{Kind: KindMap}); !errors.Is(err, ErrKind) {
		t.Fatalf("wrong-kind OpenOrCreate: %v, want ErrKind", err)
	}
}

func TestLookupAndNames(t *testing.T) {
	rt := newRT(t)
	h := rt.Handle(0)
	if _, ok := rt.Lookup(h, "nope"); ok {
		t.Fatal("missing name found")
	}
	rt.List(h, "a")
	rt.Queue(h, "b")
	if k, ok := rt.Lookup(h, "a"); !ok || k != KindList {
		t.Fatalf("Lookup(a) = %v,%v", k, ok)
	}
	if k, ok := rt.Lookup(h, "b"); !ok || k != KindQueue {
		t.Fatalf("Lookup(b) = %v,%v", k, ok)
	}
	if n := len(rt.Names(h)); n != 2 {
		t.Fatalf("Names = %d entries, want 2", n)
	}
}

func TestCrashRecoverRoundTrip(t *testing.T) {
	rt := newRT(t, WithLinkCache(true))
	h := rt.Handle(0)
	ht, _ := rt.HashTable(h, "kv", 128)
	for k := uint64(1); k <= 500; k++ {
		ht.Insert(h, k, k+7)
	}
	for k := uint64(1); k <= 500; k += 5 {
		ht.Delete(h, k)
	}
	rt.Drain() // make everything durable before the deliberate crash

	rt2, err := rt.SimulateCrash()
	if err != nil {
		t.Fatal(err)
	}
	if len(rt2.RecoveryReports()) != 1 {
		t.Fatalf("recovery reports = %d, want 1", len(rt2.RecoveryReports()))
	}
	h2 := rt2.Handle(0)
	ht2, err := rt2.HashTable(h2, "kv", 128)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k <= 500; k++ {
		want := k%5 != 1
		if got := ht2.Contains(h2, k); got != want {
			t.Fatalf("key %d after recovery: %v, want %v", k, got, want)
		}
	}
}

// TestMultiStructureCrashRecovery: several structures of different kinds
// share one store and all survive one crash — the combined recovery sweep
// must not mistake one structure's nodes for another's leaks.
func TestMultiStructureCrashRecovery(t *testing.T) {
	rt := newRT(t, WithLinkCache(true))
	h := rt.Handle(0)
	ht, _ := rt.HashTable(h, "sessions", 256)
	sl, _ := rt.SkipList(h, "by-expiry")
	bt, _ := rt.BST(h, "scores")
	q, _ := rt.Queue(h, "jobs")
	m, _ := rt.Map(h, "blobs", 64)
	for k := uint64(1); k <= 300; k++ {
		ht.Insert(h, k, k)
		sl.Insert(h, k+1000, k)
		bt.Insert(h, k+2000, k)
		q.Enqueue(h, k)
		m.Set(h, []byte(fmt.Sprintf("blob-%d", k)), []byte(fmt.Sprintf("v-%d", k)))
	}
	rt.Drain()
	rt2, err := rt.SimulateCrash()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(rt2.RecoveryReports()); got != 5 {
		t.Fatalf("recovery reports = %d, want 5", got)
	}
	h2 := rt2.Handle(0)
	ht2, _ := rt2.HashTable(h2, "sessions", 256)
	sl2, _ := rt2.SkipList(h2, "by-expiry")
	bt2, _ := rt2.BST(h2, "scores")
	q2, _ := rt2.Queue(h2, "jobs")
	m2, _ := rt2.Map(h2, "blobs", 64)
	if n := ht2.Len(h2); n != 300 {
		t.Fatalf("hash table lost entries: %d", n)
	}
	if n := sl2.Len(h2); n != 300 {
		t.Fatalf("skip list lost entries: %d", n)
	}
	if n := bt2.Len(h2); n != 300 {
		t.Fatalf("bst lost entries: %d", n)
	}
	if n := q2.Len(h2); n != 300 {
		t.Fatalf("queue lost entries: %d", n)
	}
	if n := m2.Len(h2); n != 300 {
		t.Fatalf("byte map lost entries: %d", n)
	}
	for k := uint64(1); k <= 300; k++ {
		if !ht2.Contains(h2, k) || !sl2.Contains(h2, k+1000) || !bt2.Contains(h2, k+2000) {
			t.Fatalf("key %d missing after multi-structure recovery", k)
		}
		if v, ok := m2.Get(h2, []byte(fmt.Sprintf("blob-%d", k))); !ok || string(v) != fmt.Sprintf("v-%d", k) {
			t.Fatalf("blob-%d corrupt after recovery: %q,%v", k, v, ok)
		}
	}
}

// TestDirectoryGrowth: the v1 fixed root-slot directory capped out at ~14
// structures (ErrFull); the v2 durable-hash-table directory must register
// far more and recover every one of them after a crash.
func TestDirectoryGrowth(t *testing.T) {
	rt := newRT(t, WithSize(128<<20), WithLinkCache(true))
	h := rt.Handle(0)
	const n = 24 // well past the old 14-entry ceiling
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("structure-%02d", i)
		switch i % 4 {
		case 0:
			s, err := rt.HashTable(h, name, 64)
			if err != nil {
				t.Fatalf("register %d: %v", i, err)
			}
			s.Insert(h, uint64(i)+1, uint64(i)*10)
		case 1:
			s, err := rt.SkipList(h, name)
			if err != nil {
				t.Fatalf("register %d: %v", i, err)
			}
			s.Insert(h, uint64(i)+1, uint64(i)*10)
		case 2:
			s, err := rt.BST(h, name)
			if err != nil {
				t.Fatalf("register %d: %v", i, err)
			}
			s.Insert(h, uint64(i)+1, uint64(i)*10)
		default:
			m, err := rt.Map(h, name, 64)
			if err != nil {
				t.Fatalf("register %d: %v", i, err)
			}
			m.Set(h, []byte(name), []byte(fmt.Sprintf("payload-%d", i)))
		}
	}
	rt.Drain()
	rt2, err := rt.SimulateCrash()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(rt2.RecoveryReports()); got != n {
		t.Fatalf("recovered %d structures, want %d", got, n)
	}
	h2 := rt2.Handle(0)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("structure-%02d", i)
		switch i % 4 {
		case 0:
			s, err := rt2.HashTable(h2, name, 64)
			if err != nil {
				t.Fatalf("reopen %d: %v", i, err)
			}
			if v, ok := s.Search(h2, uint64(i)+1); !ok || v != uint64(i)*10 {
				t.Fatalf("structure %d lost its entry: %d,%v", i, v, ok)
			}
		case 1:
			s, err := rt2.SkipList(h2, name)
			if err != nil {
				t.Fatalf("reopen %d: %v", i, err)
			}
			if v, ok := s.Search(h2, uint64(i)+1); !ok || v != uint64(i)*10 {
				t.Fatalf("structure %d lost its entry: %d,%v", i, v, ok)
			}
		case 2:
			s, err := rt2.BST(h2, name)
			if err != nil {
				t.Fatalf("reopen %d: %v", i, err)
			}
			if v, ok := s.Search(h2, uint64(i)+1); !ok || v != uint64(i)*10 {
				t.Fatalf("structure %d lost its entry: %d,%v", i, v, ok)
			}
		default:
			m, err := rt2.Map(h2, name, 64)
			if err != nil {
				t.Fatalf("reopen %d: %v", i, err)
			}
			if v, ok := m.Get(h2, []byte(name)); !ok || string(v) != fmt.Sprintf("payload-%d", i) {
				t.Fatalf("structure %d lost its payload: %q,%v", i, v, ok)
			}
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "pool.img")
	rt := newRT(t)
	h := rt.Handle(0)
	bt, _ := rt.BST(h, "tree")
	for k := uint64(1); k <= 200; k++ {
		bt.Insert(h, k, k*3)
	}
	if err := rt.Save(path); err != nil {
		t.Fatal(err)
	}

	rt2, err := Load(path, WithMaxThreads(4))
	if err != nil {
		t.Fatal(err)
	}
	h2 := rt2.Handle(0)
	bt2, err := rt2.BST(h2, "tree")
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k <= 200; k++ {
		if v, ok := bt2.Search(h2, k); !ok || v != k*3 {
			t.Fatalf("loaded tree Search(%d) = %d,%v", k, v, ok)
		}
	}
}

func TestConcurrentHandles(t *testing.T) {
	rt := newRT(t, WithLinkCache(true))
	h0 := rt.Handle(0)
	sl, _ := rt.SkipList(h0, "s")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := rt.Handle(w)
			base := uint64(w)*1000 + 1
			for i := uint64(0); i < 300; i++ {
				sl.Insert(h, base+i, i)
			}
			for i := uint64(0); i < 300; i += 2 {
				sl.Delete(h, base+i)
			}
		}(w)
	}
	wg.Wait()
	h := rt.Handle(0)
	for w := 0; w < 8; w++ {
		base := uint64(w)*1000 + 1
		for i := uint64(0); i < 300; i++ {
			want := i%2 == 1
			if got := sl.Contains(h, base+i); got != want {
				t.Fatalf("w%d key %d: %v want %v", w, base+i, got, want)
			}
		}
	}
}

func TestHandleReuseSameCtx(t *testing.T) {
	rt := newRT(t)
	a := rt.Handle(3)
	b := rt.Handle(3)
	if a.c != b.c {
		t.Fatal("Handle(3) created two distinct contexts")
	}
}

func TestKindString(t *testing.T) {
	if KindBST.String() != "bst" || KindMap.String() != "map" || Kind(99).String() != "unknown" {
		t.Fatal("Kind.String broken")
	}
}

func TestCrashWithoutDrainKeepsCompletedOps(t *testing.T) {
	// LP mode (no link cache): every returned update is already durable, so
	// a crash without Drain must preserve all of them.
	rt := newRT(t)
	h := rt.Handle(0)
	l, _ := rt.List(h, "l")
	for k := uint64(1); k <= 100; k++ {
		l.Insert(h, k, k)
	}
	rt2, err := rt.SimulateCrash()
	if err != nil {
		t.Fatal(err)
	}
	h2 := rt2.Handle(0)
	l2, _ := rt2.List(h2, "l")
	for k := uint64(1); k <= 100; k++ {
		if !l2.Contains(h2, k) {
			t.Fatalf("completed insert of %d lost without link cache", k)
		}
	}
}

func TestQueuePublicAPIAndRecovery(t *testing.T) {
	rt := newRT(t, WithLinkCache(true))
	h := rt.Handle(0)
	q, err := rt.Queue(h, "jobs")
	if err != nil {
		t.Fatal(err)
	}
	for v := uint64(1); v <= 50; v++ {
		q.Enqueue(h, v)
	}
	if v, ok := q.Dequeue(h); !ok || v != 1 {
		t.Fatalf("Dequeue = %d,%v", v, ok)
	}
	rt.Drain()
	rt2, err := rt.SimulateCrash()
	if err != nil {
		t.Fatal(err)
	}
	h2 := rt2.Handle(0)
	q2, err := rt2.Queue(h2, "jobs")
	if err != nil {
		t.Fatal(err)
	}
	if got := q2.Len(h2); got != 49 {
		t.Fatalf("recovered Len = %d, want 49", got)
	}
	for v := uint64(2); v <= 51; v++ {
		got, ok := q2.Dequeue(h2)
		if v <= 50 {
			if !ok || got != v {
				t.Fatalf("Dequeue = %d,%v want %d", got, ok, v)
			}
		} else if ok {
			t.Fatal("queue should be empty")
		}
	}
	if _, ok := q2.Peek(h2); ok {
		t.Fatal("Peek on empty queue")
	}
}

// TestPropertyCrashRecoverCycles drives random operations against a map
// oracle through the public API, interleaved with full crash/recover
// cycles: after every recovery the structure must equal the oracle exactly
// (single-threaded, so every completed op must persist).
func TestPropertyCrashRecoverCycles(t *testing.T) {
	rt := newRT(t, WithLinkCache(true), WithMaxThreads(2))
	h := rt.Handle(0)
	set, err := rt.BST(h, "prop")
	if err != nil {
		t.Fatal(err)
	}
	oracle := make(map[uint64]uint64)
	rng := rand.New(rand.NewSource(2026))
	for cycle := 0; cycle < 8; cycle++ {
		for i := 0; i < 400; i++ {
			k := uint64(rng.Intn(128)) + 1
			v := uint64(cycle*1000 + i)
			switch rng.Intn(3) {
			case 0:
				if set.Insert(h, k, v) {
					oracle[k] = v
				}
			case 1:
				if _, ok := set.Delete(h, k); ok {
					delete(oracle, k)
				}
			default:
				got, ok := set.Search(h, k)
				want, had := oracle[k]
				if ok != had || (ok && got != want) {
					t.Fatalf("cycle %d: Search(%d) = %d,%v oracle %d,%v",
						cycle, k, got, ok, want, had)
				}
			}
		}
		rt.Drain()
		rt2, err := rt.SimulateCrash()
		if err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		rt = rt2
		h = rt.Handle(0)
		set, err = rt.BST(h, "prop")
		if err != nil {
			t.Fatal(err)
		}
		// Exact equality with the oracle after recovery.
		count := 0
		ok := true
		set.Range(h, func(k, v uint64) bool {
			count++
			if want, had := oracle[k]; !had || want != v {
				ok = false
				return false
			}
			return true
		})
		if !ok || count != len(oracle) {
			t.Fatalf("cycle %d: recovered contents diverge from oracle (%d vs %d keys)",
				cycle, count, len(oracle))
		}
	}
}

// TestDirectoryDurableWithoutDrain: structure registration is durable at
// creation, so a crash immediately afterwards must not lose the directory
// entry (even with the link cache holding other state).
func TestDirectoryDurableWithoutDrain(t *testing.T) {
	rt := newRT(t, WithLinkCache(true))
	h := rt.Handle(0)
	if _, err := rt.SkipList(h, "early"); err != nil {
		t.Fatal(err)
	}
	rt2, err := rt.SimulateCrash()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rt2.Lookup(rt2.Handle(0), "early"); !ok {
		t.Fatal("directory entry lost in crash")
	}
	h2 := rt2.Handle(0)
	sl, err := rt2.SkipList(h2, "early")
	if err != nil {
		t.Fatalf("directory entry lost in crash: %v", err)
	}
	if !sl.Insert(h2, 1, 1) {
		t.Fatal("recovered structure unusable")
	}
}

// TestRuntimeVolatileMode: the Figure 7 configuration through the public
// API — no persistence waits at all on the operation paths.
func TestRuntimeVolatileMode(t *testing.T) {
	rt := newRT(t, WithVolatile(true))
	h := rt.Handle(0)
	bt, err := rt.BST(h, "v")
	if err != nil {
		t.Fatal(err)
	}
	rt.Device().ResetStats()
	for k := uint64(1); k <= 500; k++ {
		bt.Insert(h, k, k)
	}
	if st := rt.Device().Stats(); st.SyncWaits != 0 {
		t.Fatalf("volatile runtime paid %d syncs", st.SyncWaits)
	}
}

func TestStackPublicAPIAndRecovery(t *testing.T) {
	rt := newRT(t, WithLinkCache(true))
	h := rt.Handle(0)
	st, err := rt.Stack(h, "undo")
	if err != nil {
		t.Fatal(err)
	}
	for v := uint64(1); v <= 30; v++ {
		st.Push(h, v)
	}
	st.Pop(h)
	rt.Drain()
	rt2, err := rt.SimulateCrash()
	if err != nil {
		t.Fatal(err)
	}
	h2 := rt2.Handle(0)
	st2, err := rt2.Stack(h2, "undo")
	if err != nil {
		t.Fatal(err)
	}
	if got := st2.Len(h2); got != 29 {
		t.Fatalf("recovered Len = %d, want 29", got)
	}
	for v := uint64(29); v >= 1; v-- {
		got, ok := st2.Pop(h2)
		if !ok || got != v {
			t.Fatalf("Pop = %d,%v want %d", got, ok, v)
		}
	}
}

// TestUpsertVeneers: every keyed wrapper supports durable in-place value
// replacement.
func TestUpsertVeneers(t *testing.T) {
	rt := newRT(t)
	h := rt.Handle(0)
	l, _ := rt.List(h, "l")
	ht, _ := rt.HashTable(h, "h", 64)
	sl, _ := rt.SkipList(h, "s")
	bt, _ := rt.BST(h, "b")
	for i, s := range []Set{l, ht, sl, bt} {
		if !s.Upsert(h, 7, 1) {
			t.Fatalf("set %d: first Upsert did not insert", i)
		}
		if s.Upsert(h, 7, 2) {
			t.Fatalf("set %d: second Upsert claimed insert", i)
		}
		if v, ok := s.Search(h, 7); !ok || v != 2 {
			t.Fatalf("set %d: after Upsert Search = %d,%v", i, v, ok)
		}
		if _, ok := s.Delete(h, 7); !ok {
			t.Fatalf("set %d: Delete after Upsert failed", i)
		}
		if s.Contains(h, 7) {
			t.Fatalf("set %d: key survived Delete", i)
		}
	}
}
