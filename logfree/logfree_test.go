package logfree

import (
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func newRT(t *testing.T, opts ...Option) *Runtime {
	t.Helper()
	rt, err := New(append([]Option{WithSize(64 << 20), WithMaxThreads(8)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func TestOpenOrCreateAllKinds(t *testing.T) {
	rt := newRT(t)
	var sets []Set
	l, err := rt.List("l")
	if err != nil {
		t.Fatal(err)
	}
	ht, err := rt.HashTable("h", 64)
	if err != nil {
		t.Fatal(err)
	}
	sl, err := rt.SkipList("s")
	if err != nil {
		t.Fatal(err)
	}
	bt, err := rt.BST("b")
	if err != nil {
		t.Fatal(err)
	}
	sets = append(sets, l, ht, sl, bt)
	for i, s := range sets {
		k := uint64(i*100 + 1)
		if !s.Insert(k, k*2) {
			t.Fatalf("set %d: insert failed", i)
		}
		if v, ok := s.Search(k); !ok || v != k*2 {
			t.Fatalf("set %d: Search = %d,%v", i, v, ok)
		}
	}
	// Reopen by name: the same call is open-or-create.
	if _, err := rt.List("l"); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.HashTable("h", 64); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.SkipList("s"); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.BST("b"); err != nil {
		t.Fatal(err)
	}
	// The reopened veneer sees the same data.
	l2, _ := rt.List("l")
	if v, ok := l2.Search(1); !ok || v != 2 {
		t.Fatalf("reopened list Search = %d,%v", v, ok)
	}
}

func TestOpenWrongKindRejected(t *testing.T) {
	rt := newRT(t)
	if _, err := rt.List("x"); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.BST("x"); !errors.Is(err, ErrKindMismatch) {
		t.Fatalf("wrong-kind open: %v, want ErrKindMismatch", err)
	}
	// The deprecated alias keeps matching.
	if _, err := rt.BST("x"); !errors.Is(err, ErrKind) {
		t.Fatalf("wrong-kind open: %v, want ErrKind", err)
	}
	if _, err := rt.OpenOrCreate("x", Spec{Kind: KindMap}); !errors.Is(err, ErrKindMismatch) {
		t.Fatalf("wrong-kind OpenOrCreate: %v, want ErrKindMismatch", err)
	}
}

func TestLookupAndNames(t *testing.T) {
	rt := newRT(t)
	if _, ok := rt.Lookup("nope"); ok {
		t.Fatal("missing name found")
	}
	rt.List("a")
	rt.Queue("b")
	if k, ok := rt.Lookup("a"); !ok || k != KindList {
		t.Fatalf("Lookup(a) = %v,%v", k, ok)
	}
	if k, ok := rt.Lookup("b"); !ok || k != KindQueue {
		t.Fatalf("Lookup(b) = %v,%v", k, ok)
	}
	if n := len(rt.Names()); n != 2 {
		t.Fatalf("Names = %d entries, want 2", n)
	}
}

func TestCrashRecoverRoundTrip(t *testing.T) {
	rt := newRT(t, WithLinkCache(true))
	ht, _ := rt.HashTable("kv", 128)
	for k := uint64(1); k <= 500; k++ {
		ht.Insert(k, k+7)
	}
	for k := uint64(1); k <= 500; k += 5 {
		ht.Delete(k)
	}
	rt.Drain() // make everything durable before the deliberate crash

	rt2, err := rt.SimulateCrash()
	if err != nil {
		t.Fatal(err)
	}
	if len(rt2.RecoveryReports()) != 1 {
		t.Fatalf("recovery reports = %d, want 1", len(rt2.RecoveryReports()))
	}
	ht2, err := rt2.HashTable("kv", 128)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k <= 500; k++ {
		want := k%5 != 1
		if got := ht2.Contains(k); got != want {
			t.Fatalf("key %d after recovery: %v, want %v", k, got, want)
		}
	}
}

// TestMultiStructureCrashRecovery: several structures of different kinds
// share one store and all survive one crash — the combined recovery sweep
// must not mistake one structure's nodes for another's leaks.
func TestMultiStructureCrashRecovery(t *testing.T) {
	rt := newRT(t, WithLinkCache(true))
	ht, _ := rt.HashTable("sessions", 256)
	sl, _ := rt.SkipList("by-expiry")
	bt, _ := rt.BST("scores")
	q, _ := rt.Queue("jobs")
	m, _ := rt.Map("blobs", 64)
	for k := uint64(1); k <= 300; k++ {
		ht.Insert(k, k)
		sl.Insert(k+1000, k)
		bt.Insert(k+2000, k)
		q.Enqueue(k)
		m.Set([]byte(fmt.Sprintf("blob-%d", k)), []byte(fmt.Sprintf("v-%d", k)))
	}
	rt.Drain()
	rt2, err := rt.SimulateCrash()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(rt2.RecoveryReports()); got != 5 {
		t.Fatalf("recovery reports = %d, want 5", got)
	}
	ht2, _ := rt2.HashTable("sessions", 256)
	sl2, _ := rt2.SkipList("by-expiry")
	bt2, _ := rt2.BST("scores")
	q2, _ := rt2.Queue("jobs")
	m2, _ := rt2.Map("blobs", 64)
	if n := ht2.Len(); n != 300 {
		t.Fatalf("hash table lost entries: %d", n)
	}
	if n := sl2.Len(); n != 300 {
		t.Fatalf("skip list lost entries: %d", n)
	}
	if n := bt2.Len(); n != 300 {
		t.Fatalf("bst lost entries: %d", n)
	}
	if n := q2.Len(); n != 300 {
		t.Fatalf("queue lost entries: %d", n)
	}
	if n := m2.Len(); n != 300 {
		t.Fatalf("byte map lost entries: %d", n)
	}
	for k := uint64(1); k <= 300; k++ {
		if !ht2.Contains(k) || !sl2.Contains(k+1000) || !bt2.Contains(k+2000) {
			t.Fatalf("key %d missing after multi-structure recovery", k)
		}
		if v, ok := m2.Get([]byte(fmt.Sprintf("blob-%d", k))); !ok || string(v) != fmt.Sprintf("v-%d", k) {
			t.Fatalf("blob-%d corrupt after recovery: %q,%v", k, v, ok)
		}
	}
}

// TestDirectoryGrowth: the v1 fixed root-slot directory capped out at ~14
// structures (ErrFull); the durable-hash-table directory must register far
// more and recover every one of them after a crash.
func TestDirectoryGrowth(t *testing.T) {
	rt := newRT(t, WithSize(128<<20), WithLinkCache(true))
	const n = 24 // well past the old 14-entry ceiling
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("structure-%02d", i)
		switch i % 4 {
		case 0:
			s, err := rt.HashTable(name, 64)
			if err != nil {
				t.Fatalf("register %d: %v", i, err)
			}
			s.Insert(uint64(i)+1, uint64(i)*10)
		case 1:
			s, err := rt.SkipList(name)
			if err != nil {
				t.Fatalf("register %d: %v", i, err)
			}
			s.Insert(uint64(i)+1, uint64(i)*10)
		case 2:
			s, err := rt.BST(name)
			if err != nil {
				t.Fatalf("register %d: %v", i, err)
			}
			s.Insert(uint64(i)+1, uint64(i)*10)
		default:
			m, err := rt.Map(name, 64)
			if err != nil {
				t.Fatalf("register %d: %v", i, err)
			}
			m.Set([]byte(name), []byte(fmt.Sprintf("payload-%d", i)))
		}
	}
	rt.Drain()
	rt2, err := rt.SimulateCrash()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(rt2.RecoveryReports()); got != n {
		t.Fatalf("recovered %d structures, want %d", got, n)
	}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("structure-%02d", i)
		switch i % 4 {
		case 0:
			s, err := rt2.HashTable(name, 64)
			if err != nil {
				t.Fatalf("reopen %d: %v", i, err)
			}
			if v, ok := s.Search(uint64(i) + 1); !ok || v != uint64(i)*10 {
				t.Fatalf("structure %d lost its entry: %d,%v", i, v, ok)
			}
		case 1:
			s, err := rt2.SkipList(name)
			if err != nil {
				t.Fatalf("reopen %d: %v", i, err)
			}
			if v, ok := s.Search(uint64(i) + 1); !ok || v != uint64(i)*10 {
				t.Fatalf("structure %d lost its entry: %d,%v", i, v, ok)
			}
		case 2:
			s, err := rt2.BST(name)
			if err != nil {
				t.Fatalf("reopen %d: %v", i, err)
			}
			if v, ok := s.Search(uint64(i) + 1); !ok || v != uint64(i)*10 {
				t.Fatalf("structure %d lost its entry: %d,%v", i, v, ok)
			}
		default:
			m, err := rt2.Map(name, 64)
			if err != nil {
				t.Fatalf("reopen %d: %v", i, err)
			}
			if v, ok := m.Get([]byte(name)); !ok || string(v) != fmt.Sprintf("payload-%d", i) {
				t.Fatalf("structure %d lost its payload: %q,%v", i, v, ok)
			}
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "pool.img")
	rt := newRT(t)
	bt, _ := rt.BST("tree")
	for k := uint64(1); k <= 200; k++ {
		bt.Insert(k, k*3)
	}
	if err := rt.Save(path); err != nil {
		t.Fatal(err)
	}

	rt2, err := Load(path, WithMaxThreads(4))
	if err != nil {
		t.Fatal(err)
	}
	bt2, err := rt2.BST("tree")
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k <= 200; k++ {
		if v, ok := bt2.Search(k); !ok || v != k*3 {
			t.Fatalf("loaded tree Search(%d) = %d,%v", k, v, ok)
		}
	}
}

// TestConcurrentImplicitSessions: goroutines call structure methods with no
// per-thread plumbing at all; the session pool serves them all.
func TestConcurrentImplicitSessions(t *testing.T) {
	rt := newRT(t, WithLinkCache(true))
	sl, _ := rt.SkipList("s")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w)*1000 + 1
			for i := uint64(0); i < 300; i++ {
				sl.Insert(base+i, i)
			}
			for i := uint64(0); i < 300; i += 2 {
				sl.Delete(base + i)
			}
		}(w)
	}
	wg.Wait()
	for w := 0; w < 8; w++ {
		base := uint64(w)*1000 + 1
		for i := uint64(0); i < 300; i++ {
			want := i%2 == 1
			if got := sl.Contains(base + i); got != want {
				t.Fatalf("w%d key %d: %v want %v", w, base+i, got, want)
			}
		}
	}
}

// TestSessionPoolGrowsPastMaxThreads: far more goroutines than the formatted
// thread count, on a runtime formatted for ONE thread — the pool must grow
// (durable APT banks) instead of capping or panicking, and the data must
// survive a crash.
func TestSessionPoolGrowsPastMaxThreads(t *testing.T) {
	rt, err := New(WithSize(64<<20), WithMaxThreads(1), WithLinkCache(true))
	if err != nil {
		t.Fatal(err)
	}
	m, err := rt.Map("grow", 256)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 16
	var wg sync.WaitGroup
	var gate sync.WaitGroup
	gate.Add(1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			gate.Wait() // maximize overlap so the pool must actually grow
			for i := 0; i < 100; i++ {
				k := []byte(fmt.Sprintf("w%02d-%03d", w, i))
				if err := m.Set(k, k); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	gate.Done()
	wg.Wait()
	if t.Failed() {
		return
	}
	rt.Drain()
	rt2, err := rt.SimulateCrash()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := rt2.Map("grow", 256)
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < workers; w++ {
		for i := 0; i < 100; i++ {
			k := []byte(fmt.Sprintf("w%02d-%03d", w, i))
			if v, ok := m2.Get(k); !ok || string(v) != string(k) {
				t.Fatalf("%s lost across crash: %q,%v", k, v, ok)
			}
		}
	}
}

// TestAttachSeedsRecoveredContexts: the recovery pass registers one core
// context per formatted thread; Attach must hand them all to the session
// pool instead of carving fresh durable APT banks while formatted slots sit
// idle.
func TestAttachSeedsRecoveredContexts(t *testing.T) {
	rt := newRT(t, WithMaxThreads(4))
	m, err := rt.Map("seed", 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Set([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	rt.Drain()
	rt2, err := rt.SimulateCrash()
	if err != nil {
		t.Fatal(err)
	}
	if got := rt2.Sessions(); got < 4 {
		t.Fatalf("pool seeded with %d sessions, want the 4 recovered contexts", got)
	}
	seeded := rt2.Sessions()
	m2, err := rt2.Map("seed", 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, ok := m2.Get([]byte("k")); !ok {
			t.Fatal("recovered key missing")
		}
	}
	if got := rt2.Sessions(); got != seeded {
		t.Fatalf("single-flow ops grew the pool from %d to %d sessions", seeded, got)
	}
}

// TestPinnedSession: WithSession views run on the pinned context and skip
// the pool; Close returns the session.
func TestPinnedSession(t *testing.T) {
	rt := newRT(t)
	s, err := rt.Session()
	if err != nil {
		t.Fatal(err)
	}
	m, _ := rt.Map("pin", 64)
	pm := m.WithSession(s)
	for i := 0; i < 100; i++ {
		k := []byte(fmt.Sprintf("p-%03d", i))
		if err := pm.Set(k, k); err != nil {
			t.Fatal(err)
		}
	}
	if n := pm.Len(); n != 100 {
		t.Fatalf("Len = %d", n)
	}
	s.Reclaim()
	s.Close()
	// The unpinned map still works after the session went back to the pool.
	if _, ok := m.Get([]byte("p-007")); !ok {
		t.Fatal("unpinned read failed")
	}
}

// TestHandleShim: the deprecated Handle(tid) keeps working as a pinned
// session — same tid, same context — and rejects out-of-range tids with a
// descriptive panic (the v2 behaviour was whatever the core context table
// did).
func TestHandleShim(t *testing.T) {
	rt := newRT(t)
	a := rt.Handle(3)
	b := rt.Handle(3)
	if a != b || a.c != b.c {
		t.Fatal("Handle(3) created two distinct contexts")
	}
	a.Reclaim()
	a.Close() // no-op for pinned shim sessions
	if c := rt.Handle(3); c != a {
		t.Fatal("Handle(3) changed identity after Close")
	}
	for _, tid := range []int{-1, maxHandleTid} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("Handle(%d) did not panic", tid)
				}
				msg := fmt.Sprint(r)
				if !strings.Contains(msg, "out of range") || !strings.Contains(msg, fmt.Sprint(tid)) {
					t.Fatalf("Handle(%d) panic not descriptive: %q", tid, msg)
				}
			}()
			rt.Handle(tid)
		}()
	}
}

func TestKindString(t *testing.T) {
	if KindBST.String() != "bst" || KindMap.String() != "map" || Kind(99).String() != "unknown" {
		t.Fatal("Kind.String broken")
	}
}

func TestCrashWithoutDrainKeepsCompletedOps(t *testing.T) {
	// LP mode (no link cache): every returned update is already durable, so
	// a crash without Drain must preserve all of them.
	rt := newRT(t)
	l, _ := rt.List("l")
	for k := uint64(1); k <= 100; k++ {
		l.Insert(k, k)
	}
	rt2, err := rt.SimulateCrash()
	if err != nil {
		t.Fatal(err)
	}
	l2, _ := rt2.List("l")
	for k := uint64(1); k <= 100; k++ {
		if !l2.Contains(k) {
			t.Fatalf("completed insert of %d lost without link cache", k)
		}
	}
}

func TestQueuePublicAPIAndRecovery(t *testing.T) {
	rt := newRT(t, WithLinkCache(true))
	q, err := rt.Queue("jobs")
	if err != nil {
		t.Fatal(err)
	}
	for v := uint64(1); v <= 50; v++ {
		q.Enqueue(v)
	}
	if v, ok := q.Dequeue(); !ok || v != 1 {
		t.Fatalf("Dequeue = %d,%v", v, ok)
	}
	rt.Drain()
	rt2, err := rt.SimulateCrash()
	if err != nil {
		t.Fatal(err)
	}
	q2, err := rt2.Queue("jobs")
	if err != nil {
		t.Fatal(err)
	}
	if got := q2.Len(); got != 49 {
		t.Fatalf("recovered Len = %d, want 49", got)
	}
	for v := uint64(2); v <= 51; v++ {
		got, ok := q2.Dequeue()
		if v <= 50 {
			if !ok || got != v {
				t.Fatalf("Dequeue = %d,%v want %d", got, ok, v)
			}
		} else if ok {
			t.Fatal("queue should be empty")
		}
	}
	if _, ok := q2.Peek(); ok {
		t.Fatal("Peek on empty queue")
	}
}

// TestPropertyCrashRecoverCycles drives random operations against a map
// oracle through the public API, interleaved with full crash/recover
// cycles: after every recovery the structure must equal the oracle exactly
// (single-threaded, so every completed op must persist).
func TestPropertyCrashRecoverCycles(t *testing.T) {
	rt := newRT(t, WithLinkCache(true), WithMaxThreads(2))
	set, err := rt.BST("prop")
	if err != nil {
		t.Fatal(err)
	}
	oracle := make(map[uint64]uint64)
	rng := rand.New(rand.NewSource(2026))
	for cycle := 0; cycle < 8; cycle++ {
		for i := 0; i < 400; i++ {
			k := uint64(rng.Intn(128)) + 1
			v := uint64(cycle*1000 + i)
			switch rng.Intn(3) {
			case 0:
				if set.Insert(k, v) {
					oracle[k] = v
				}
			case 1:
				if _, ok := set.Delete(k); ok {
					delete(oracle, k)
				}
			default:
				got, ok := set.Search(k)
				want, had := oracle[k]
				if ok != had || (ok && got != want) {
					t.Fatalf("cycle %d: Search(%d) = %d,%v oracle %d,%v",
						cycle, k, got, ok, want, had)
				}
			}
		}
		rt.Drain()
		rt2, err := rt.SimulateCrash()
		if err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		rt = rt2
		set, err = rt.BST("prop")
		if err != nil {
			t.Fatal(err)
		}
		// Exact equality with the oracle after recovery.
		count := 0
		for k, v := range set.All() {
			count++
			if want, had := oracle[k]; !had || want != v {
				t.Fatalf("cycle %d: recovered %d=%d diverges from oracle", cycle, k, v)
			}
		}
		if count != len(oracle) {
			t.Fatalf("cycle %d: recovered %d keys, oracle has %d", cycle, count, len(oracle))
		}
	}
}

// TestDirectoryDurableWithoutDrain: structure registration is durable at
// creation, so a crash immediately afterwards must not lose the directory
// entry (even with the link cache holding other state).
func TestDirectoryDurableWithoutDrain(t *testing.T) {
	rt := newRT(t, WithLinkCache(true))
	if _, err := rt.SkipList("early"); err != nil {
		t.Fatal(err)
	}
	rt2, err := rt.SimulateCrash()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rt2.Lookup("early"); !ok {
		t.Fatal("directory entry lost in crash")
	}
	sl, err := rt2.SkipList("early")
	if err != nil {
		t.Fatalf("directory entry lost in crash: %v", err)
	}
	if !sl.Insert(1, 1) {
		t.Fatal("recovered structure unusable")
	}
}

// TestRuntimeVolatileMode: the Figure 7 configuration through the public
// API — no persistence waits at all on the operation paths.
func TestRuntimeVolatileMode(t *testing.T) {
	rt := newRT(t, WithVolatile(true))
	bt, err := rt.BST("v")
	if err != nil {
		t.Fatal(err)
	}
	rt.Device().ResetStats()
	for k := uint64(1); k <= 500; k++ {
		bt.Insert(k, k)
	}
	if st := rt.Device().Stats(); st.SyncWaits != 0 {
		t.Fatalf("volatile runtime paid %d syncs", st.SyncWaits)
	}
}

func TestStackPublicAPIAndRecovery(t *testing.T) {
	rt := newRT(t, WithLinkCache(true))
	st, err := rt.Stack("undo")
	if err != nil {
		t.Fatal(err)
	}
	for v := uint64(1); v <= 30; v++ {
		st.Push(v)
	}
	st.Pop()
	rt.Drain()
	rt2, err := rt.SimulateCrash()
	if err != nil {
		t.Fatal(err)
	}
	st2, err := rt2.Stack("undo")
	if err != nil {
		t.Fatal(err)
	}
	if got := st2.Len(); got != 29 {
		t.Fatalf("recovered Len = %d, want 29", got)
	}
	for v := uint64(29); v >= 1; v-- {
		got, ok := st2.Pop()
		if !ok || got != v {
			t.Fatalf("Pop = %d,%v want %d", got, ok, v)
		}
	}
}

// TestUpsertVeneers: every keyed wrapper supports durable in-place value
// replacement.
func TestUpsertVeneers(t *testing.T) {
	rt := newRT(t)
	l, _ := rt.List("l")
	ht, _ := rt.HashTable("h", 64)
	sl, _ := rt.SkipList("s")
	bt, _ := rt.BST("b")
	for i, s := range []Set{l, ht, sl, bt} {
		if !s.Upsert(7, 1) {
			t.Fatalf("set %d: first Upsert did not insert", i)
		}
		if s.Upsert(7, 2) {
			t.Fatalf("set %d: second Upsert claimed insert", i)
		}
		if v, ok := s.Search(7); !ok || v != 2 {
			t.Fatalf("set %d: after Upsert Search = %d,%v", i, v, ok)
		}
		if _, ok := s.Delete(7); !ok {
			t.Fatalf("set %d: Delete after Upsert failed", i)
		}
		if s.Contains(7) {
			t.Fatalf("set %d: key survived Delete", i)
		}
	}
}

// TestClosedRuntime: operations on a closed runtime fail with ErrClosed
// through errors.Is; a crashed-away runtime is closed too.
func TestClosedRuntime(t *testing.T) {
	rt := newRT(t)
	m, err := rt.Map("c", 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Set([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err) // idempotent
	}
	if err := m.Set([]byte("k"), []byte("v2")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Set on closed runtime: %v, want ErrClosed", err)
	}
	if _, err := rt.Map("c2", 64); !errors.Is(err, ErrClosed) {
		t.Fatalf("Map on closed runtime: %v, want ErrClosed", err)
	}
	if _, err := rt.Session(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Session on closed runtime: %v, want ErrClosed", err)
	}
	if err := m.Batch().Set([]byte("k"), []byte("v3")).Commit(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Commit on closed runtime: %v, want ErrClosed", err)
	}

	rt2 := newRT(t)
	m2, _ := rt2.Map("c", 64)
	rt3, err := rt2.SimulateCrash()
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.Set([]byte("k"), []byte("v")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Set on crashed-away runtime: %v, want ErrClosed", err)
	}
	m3, _ := rt3.Map("c", 64)
	if err := m3.Set([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
}
