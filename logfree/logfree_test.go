package logfree

import (
	"math/rand"
	"path/filepath"
	"sync"
	"testing"
)

func newRT(t *testing.T, cfg Config) *Runtime {
	t.Helper()
	if cfg.Size == 0 {
		cfg.Size = 64 << 20
	}
	if cfg.MaxThreads == 0 {
		cfg.MaxThreads = 8
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func TestCreateOpenAllKinds(t *testing.T) {
	rt := newRT(t, Config{})
	h := rt.Handle(0)
	var sets []Set
	l, err := rt.CreateList(h, "l")
	if err != nil {
		t.Fatal(err)
	}
	ht, err := rt.CreateHashTable(h, "h", 64)
	if err != nil {
		t.Fatal(err)
	}
	sl, err := rt.CreateSkipList(h, "s")
	if err != nil {
		t.Fatal(err)
	}
	bt, err := rt.CreateBST(h, "b")
	if err != nil {
		t.Fatal(err)
	}
	sets = append(sets, l, ht, sl, bt)
	for i, s := range sets {
		k := uint64(i*100 + 1)
		if !s.Insert(h, k, k*2) {
			t.Fatalf("set %d: insert failed", i)
		}
		if v, ok := s.Search(h, k); !ok || v != k*2 {
			t.Fatalf("set %d: Search = %d,%v", i, v, ok)
		}
	}
	// Reopen by name.
	if _, err := rt.OpenList("l"); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.OpenHashTable("h"); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.OpenSkipList("s"); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.OpenBST("b"); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicateNameRejected(t *testing.T) {
	rt := newRT(t, Config{})
	h := rt.Handle(0)
	if _, err := rt.CreateList(h, "x"); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.CreateBST(h, "x"); err == nil {
		t.Fatal("duplicate name accepted")
	}
}

func TestOpenWrongKind(t *testing.T) {
	rt := newRT(t, Config{})
	h := rt.Handle(0)
	rt.CreateList(h, "x")
	if _, err := rt.OpenBST("x"); err == nil {
		t.Fatal("wrong-kind open accepted")
	}
}

func TestOpenMissing(t *testing.T) {
	rt := newRT(t, Config{})
	if _, err := rt.OpenList("nope"); err == nil {
		t.Fatal("missing open accepted")
	}
}

func TestCrashRecoverRoundTrip(t *testing.T) {
	rt := newRT(t, Config{LinkCache: true})
	h := rt.Handle(0)
	ht, _ := rt.CreateHashTable(h, "kv", 128)
	for k := uint64(1); k <= 500; k++ {
		ht.Insert(h, k, k+7)
	}
	for k := uint64(1); k <= 500; k += 5 {
		ht.Delete(h, k)
	}
	rt.Drain() // make everything durable before the deliberate crash

	rt2, err := rt.SimulateCrash()
	if err != nil {
		t.Fatal(err)
	}
	if len(rt2.RecoveryReports()) != 1 {
		t.Fatalf("recovery reports = %d, want 1", len(rt2.RecoveryReports()))
	}
	ht2, err := rt2.OpenHashTable("kv")
	if err != nil {
		t.Fatal(err)
	}
	h2 := rt2.Handle(0)
	for k := uint64(1); k <= 500; k++ {
		want := k%5 != 1
		if got := ht2.Contains(h2, k); got != want {
			t.Fatalf("key %d after recovery: %v, want %v", k, got, want)
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "pool.img")
	rt := newRT(t, Config{})
	h := rt.Handle(0)
	bt, _ := rt.CreateBST(h, "tree")
	for k := uint64(1); k <= 200; k++ {
		bt.Insert(h, k, k*3)
	}
	if err := rt.Save(path); err != nil {
		t.Fatal(err)
	}

	rt2, err := Load(path, Config{MaxThreads: 4})
	if err != nil {
		t.Fatal(err)
	}
	bt2, err := rt2.OpenBST("tree")
	if err != nil {
		t.Fatal(err)
	}
	h2 := rt2.Handle(0)
	for k := uint64(1); k <= 200; k++ {
		if v, ok := bt2.Search(h2, k); !ok || v != k*3 {
			t.Fatalf("loaded tree Search(%d) = %d,%v", k, v, ok)
		}
	}
}

func TestConcurrentHandles(t *testing.T) {
	rt := newRT(t, Config{LinkCache: true})
	h0 := rt.Handle(0)
	sl, _ := rt.CreateSkipList(h0, "s")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := rt.Handle(w)
			base := uint64(w)*1000 + 1
			for i := uint64(0); i < 300; i++ {
				sl.Insert(h, base+i, i)
			}
			for i := uint64(0); i < 300; i += 2 {
				sl.Delete(h, base+i)
			}
		}(w)
	}
	wg.Wait()
	h := rt.Handle(0)
	for w := 0; w < 8; w++ {
		base := uint64(w)*1000 + 1
		for i := uint64(0); i < 300; i++ {
			want := i%2 == 1
			if got := sl.Contains(h, base+i); got != want {
				t.Fatalf("w%d key %d: %v want %v", w, base+i, got, want)
			}
		}
	}
}

func TestHandleReuseSameCtx(t *testing.T) {
	rt := newRT(t, Config{})
	a := rt.Handle(3)
	b := rt.Handle(3)
	if a.c != b.c {
		t.Fatal("Handle(3) created two distinct contexts")
	}
}

func TestKindString(t *testing.T) {
	if KindBST.String() != "bst" || Kind(99).String() != "unknown" {
		t.Fatal("Kind.String broken")
	}
}

func TestCrashWithoutDrainKeepsCompletedOps(t *testing.T) {
	// LP mode (no link cache): every returned update is already durable, so
	// a crash without Drain must preserve all of them.
	rt := newRT(t, Config{})
	h := rt.Handle(0)
	l, _ := rt.CreateList(h, "l")
	for k := uint64(1); k <= 100; k++ {
		l.Insert(h, k, k)
	}
	rt2, err := rt.SimulateCrash()
	if err != nil {
		t.Fatal(err)
	}
	l2, _ := rt2.OpenList("l")
	h2 := rt2.Handle(0)
	for k := uint64(1); k <= 100; k++ {
		if !l2.Contains(h2, k) {
			t.Fatalf("completed insert of %d lost without link cache", k)
		}
	}
}

func TestQueuePublicAPIAndRecovery(t *testing.T) {
	rt := newRT(t, Config{LinkCache: true})
	h := rt.Handle(0)
	q, err := rt.CreateQueue(h, "jobs")
	if err != nil {
		t.Fatal(err)
	}
	for v := uint64(1); v <= 50; v++ {
		q.Enqueue(h, v)
	}
	if v, ok := q.Dequeue(h); !ok || v != 1 {
		t.Fatalf("Dequeue = %d,%v", v, ok)
	}
	rt.Drain()
	rt2, err := rt.SimulateCrash()
	if err != nil {
		t.Fatal(err)
	}
	q2, err := rt2.OpenQueue("jobs")
	if err != nil {
		t.Fatal(err)
	}
	h2 := rt2.Handle(0)
	if got := q2.Len(h2); got != 49 {
		t.Fatalf("recovered Len = %d, want 49", got)
	}
	for v := uint64(2); v <= 51; v++ {
		got, ok := q2.Dequeue(h2)
		if v <= 50 {
			if !ok || got != v {
				t.Fatalf("Dequeue = %d,%v want %d", got, ok, v)
			}
		} else if ok {
			t.Fatal("queue should be empty")
		}
	}
	if _, ok := q2.Peek(h2); ok {
		t.Fatal("Peek on empty queue")
	}
}

// TestPropertyCrashRecoverCycles drives random operations against a map
// oracle through the public API, interleaved with full crash/recover
// cycles: after every recovery the structure must equal the oracle exactly
// (single-threaded, so every completed op must persist).
func TestPropertyCrashRecoverCycles(t *testing.T) {
	rt := newRT(t, Config{LinkCache: true, MaxThreads: 2})
	h := rt.Handle(0)
	set, err := rt.CreateBST(h, "prop")
	if err != nil {
		t.Fatal(err)
	}
	oracle := make(map[uint64]uint64)
	rng := rand.New(rand.NewSource(2026))
	for cycle := 0; cycle < 8; cycle++ {
		for i := 0; i < 400; i++ {
			k := uint64(rng.Intn(128)) + 1
			v := uint64(cycle*1000 + i)
			switch rng.Intn(3) {
			case 0:
				if set.Insert(h, k, v) {
					oracle[k] = v
				}
			case 1:
				if _, ok := set.Delete(h, k); ok {
					delete(oracle, k)
				}
			default:
				got, ok := set.Search(h, k)
				want, had := oracle[k]
				if ok != had || (ok && got != want) {
					t.Fatalf("cycle %d: Search(%d) = %d,%v oracle %d,%v",
						cycle, k, got, ok, want, had)
				}
			}
		}
		rt.Drain()
		rt2, err := rt.SimulateCrash()
		if err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		rt = rt2
		h = rt.Handle(0)
		set, err = rt.OpenBST("prop")
		if err != nil {
			t.Fatal(err)
		}
		// Exact equality with the oracle after recovery.
		count := 0
		ok := true
		set.Range(h, func(k, v uint64) bool {
			count++
			if want, had := oracle[k]; !had || want != v {
				ok = false
				return false
			}
			return true
		})
		if !ok || count != len(oracle) {
			t.Fatalf("cycle %d: recovered contents diverge from oracle (%d vs %d keys)",
				cycle, count, len(oracle))
		}
	}
}

// TestDirectoryDurableWithoutDrain: structure registration is synced at
// creation, so a crash immediately afterwards must not lose the directory
// entry (even with the link cache holding other state).
func TestDirectoryDurableWithoutDrain(t *testing.T) {
	rt := newRT(t, Config{LinkCache: true})
	h := rt.Handle(0)
	if _, err := rt.CreateSkipList(h, "early"); err != nil {
		t.Fatal(err)
	}
	rt2, err := rt.SimulateCrash()
	if err != nil {
		t.Fatal(err)
	}
	sl, err := rt2.OpenSkipList("early")
	if err != nil {
		t.Fatalf("directory entry lost in crash: %v", err)
	}
	h2 := rt2.Handle(0)
	if !sl.Insert(h2, 1, 1) {
		t.Fatal("recovered structure unusable")
	}
}

// TestRuntimeVolatileMode: the Figure 7 configuration through the public
// API — no persistence actions at all.
func TestRuntimeVolatileMode(t *testing.T) {
	rt := newRT(t, Config{Volatile: true})
	h := rt.Handle(0)
	bt, err := rt.CreateBST(h, "v")
	if err != nil {
		t.Fatal(err)
	}
	rt.Device().ResetStats()
	for k := uint64(1); k <= 500; k++ {
		bt.Insert(h, k, k)
	}
	if st := rt.Device().Stats(); st.SyncWaits != 0 {
		t.Fatalf("volatile runtime paid %d syncs", st.SyncWaits)
	}
}

func TestStackPublicAPIAndRecovery(t *testing.T) {
	rt := newRT(t, Config{LinkCache: true})
	h := rt.Handle(0)
	st, err := rt.CreateStack(h, "undo")
	if err != nil {
		t.Fatal(err)
	}
	for v := uint64(1); v <= 30; v++ {
		st.Push(h, v)
	}
	st.Pop(h)
	rt.Drain()
	rt2, err := rt.SimulateCrash()
	if err != nil {
		t.Fatal(err)
	}
	st2, err := rt2.OpenStack("undo")
	if err != nil {
		t.Fatal(err)
	}
	h2 := rt2.Handle(0)
	if got := st2.Len(h2); got != 29 {
		t.Fatalf("recovered Len = %d, want 29", got)
	}
	for v := uint64(29); v >= 1; v-- {
		got, ok := st2.Pop(h2)
		if !ok || got != v {
			t.Fatalf("Pop = %d,%v want %d", got, ok, v)
		}
	}
}
