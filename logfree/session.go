package logfree

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"repro/internal/core"
)

// This file implements implicit sessions, the v3 threading model. Structure
// methods take no per-thread handle: each operation acquires an operation
// context from the runtime's lock-free session pool and releases it on
// return, so any number of goroutines can call any method of any structure
// concurrently, with no WithMaxThreads-style cap — the pool grows on demand
// (each new session is backed by a core context, which past the formatted
// thread count gets its own durable APT bank).
//
// The pool is a Treiber stack over a grow-only session registry, with a
// version-counted head (index in the low word, version in the high word) so
// pops are ABA-safe without allocation: acquire and release are one CAS each
// on the uncontended path. Advanced callers can pin a Session explicitly
// (Runtime.Session, or the structures' WithSession views) to amortize even
// that, or to scope Reclaim.

// Session is an explicitly pinned operation context. Obtain one from
// Runtime.Session, use it via the structures' WithSession views (or just for
// Reclaim), and Close it to return it to the pool. A Session must not be
// used by two goroutines at once; the implicit per-operation sessions the
// pool hands out make that the default for all plain method calls.
type Session struct {
	rt     *Runtime
	c      *core.Ctx
	idx    uint32 // 1-based index in the pool registry
	next   uint32 // freelist link (registry index) while idle
	pinned bool   // Handle(tid) shim sessions never return to the pool
}

// Reclaim flushes this session's deferred reclamation work, converting
// retired nodes into reusable slots immediately. Useful between eviction
// passes under memory pressure; never required for correctness.
func (s *Session) Reclaim() { s.c.Epoch().FlushAll() }

// Close returns the session to the runtime's pool. The session must not be
// used afterwards. Closing a Handle(tid) shim session is a no-op (those stay
// pinned to their tid for the life of the runtime).
func (s *Session) Close() {
	if !s.pinned {
		s.rt.pool.push(s)
	}
}

// Handle is the v2 name for a pinned operation context.
//
// Deprecated: structure methods no longer take handles — call them directly
// (each operation draws a pooled session), or pin a Session explicitly via
// Runtime.Session and the structures' WithSession views.
type Handle = Session

// sessionPool is the lock-free idle-session stack plus the grow-only
// registry backing it.
type sessionPool struct {
	store *core.Store

	// head packs (version<<32 | 1-based registry index); 0 index = empty.
	// The version increments on every successful pop and push, making the
	// intrusive freelist ABA-safe.
	head atomic.Uint64

	// reg is the grow-only registry of all sessions ever created (copied on
	// growth; readers load the pointer lock-free). Growth itself serializes
	// on the store's context lock via GrowCtx.
	reg   atomic.Pointer[[]*Session]
	grown atomic.Int64 // sessions ever created (diagnostic)
}

func newSessionPool(store *core.Store) *sessionPool {
	p := &sessionPool{store: store}
	empty := []*Session{}
	p.reg.Store(&empty)
	return p
}

// pop takes an idle session off the stack, or returns nil when none is idle.
func (p *sessionPool) pop() *Session {
	for {
		h := p.head.Load()
		idx := uint32(h)
		if idx == 0 {
			return nil
		}
		s := (*p.reg.Load())[idx-1]
		next := atomic.LoadUint32(&s.next)
		if p.head.CompareAndSwap(h, (h>>32+1)<<32|uint64(next)) {
			return s
		}
	}
}

// push returns an idle session to the stack.
func (p *sessionPool) push(s *Session) {
	for {
		h := p.head.Load()
		atomic.StoreUint32(&s.next, uint32(h))
		if p.head.CompareAndSwap(h, (h>>32+1)<<32|uint64(s.idx)) {
			return
		}
	}
}

// register adds a session (already bound to a core context) to the grow-only
// registry, in acquired state (not on the idle stack).
func (p *sessionPool) register(s *Session) {
	for {
		old := p.reg.Load()
		grown := make([]*Session, len(*old)+1)
		copy(grown, *old)
		s.idx = uint32(len(*old) + 1)
		grown[len(*old)] = s
		if p.reg.CompareAndSwap(old, &grown) {
			p.grown.Add(1)
			return
		}
	}
}

// grow creates a brand-new session on a fresh core context and registers it.
// The new session is returned in acquired state (not on the idle stack).
func (p *sessionPool) grow(rt *Runtime) (*Session, error) {
	c, err := p.store.GrowCtx()
	if err != nil {
		return nil, wrapErr(err)
	}
	s := &Session{rt: rt, c: c}
	p.register(s)
	return s, nil
}

// acquireErr takes a session from the pool (growing it when every session is
// busy), failing with ErrClosed on a closed runtime. If growth itself is
// exhausted — the epoch manager's durable bank limit, or an image predating
// bank support — the pool degrades to multiplexing: the caller waits for an
// idle session instead of failing (the registry is never empty; the runtime
// seeds it at construction).
func (r *Runtime) acquireErr() (*Session, error) {
	if r.closed.Load() {
		return nil, ErrClosed
	}
	if s := r.pool.pop(); s != nil {
		return s, nil
	}
	s, err := r.pool.grow(r)
	if err == nil {
		return s, nil
	}
	for {
		if r.closed.Load() {
			return nil, ErrClosed
		}
		if s := r.pool.pop(); s != nil {
			return s, nil
		}
		runtime.Gosched()
	}
}

// acquire is acquireErr for methods without an error result: it panics with
// an ErrClosed-wrapping error on a closed runtime (the only way acquireErr
// can fail — exhausted growth waits for an idle session instead).
func (r *Runtime) acquire() *Session {
	s, err := r.acquireErr()
	if err != nil {
		panic(fmt.Errorf("logfree: acquiring operation context: %w", err))
	}
	return s
}

func (r *Runtime) release(s *Session) {
	if s != nil {
		r.pool.push(s)
	}
}

// Session takes a session out of the pool, pinned to the caller until Close.
// Pinning is never required — every structure method draws a pooled session
// implicitly — but skips the pool round-trip in tight single-goroutine loops
// (pass the session to the structures' WithSession views) and scopes
// Reclaim.
func (r *Runtime) Session() (*Session, error) {
	return r.acquireErr()
}

// Sessions reports how many sessions (core contexts) the pool has created so
// far — the high-water mark of concurrent operations, not the live count.
func (r *Runtime) Sessions() int { return int(r.pool.grown.Load()) }

// maxHandleTid bounds the deprecated Handle(tid) shim. Sessions grow on
// demand, so there is no real thread cap anymore; the bound only catches
// garbage tids early with a descriptive panic instead of whatever the core
// would do with them.
const maxHandleTid = 1 << 20

// Handle returns the pinned session shimming v2's per-thread handle for tid.
// The same tid always yields the same context. It panics with a descriptive
// message when tid is negative or absurd (>= 1<<20): v2 returned whatever
// the core's context table did with an out-of-range tid.
//
// Deprecated: call structure methods directly (implicit sessions), or pin a
// Session via Runtime.Session.
func (r *Runtime) Handle(tid int) *Handle {
	if tid < 0 || tid >= maxHandleTid {
		panic(fmt.Sprintf("logfree: Handle(%d): tid out of range [0, %d): the v3 runtime grows sessions on demand — use Runtime.Session (or plain structure methods) instead of numbered handles", tid, maxHandleTid))
	}
	r.handleMu.Lock()
	defer r.handleMu.Unlock()
	if s, ok := r.handles[tid]; ok {
		return s
	}
	if r.closed.Load() {
		panic(fmt.Errorf("logfree: Handle(%d): %w", tid, ErrClosed))
	}
	s, err := r.pool.grow(r)
	if err != nil {
		panic(fmt.Errorf("logfree: Handle(%d): %w", tid, err))
	}
	s.pinned = true
	if r.handles == nil {
		r.handles = make(map[int]*Session)
	}
	r.handles[tid] = s
	return s
}

// binding resolves each operation's core context: a structure view carries
// either no pin (operations draw pooled sessions) or a pinned session from
// WithSession.
type binding struct {
	rt  *Runtime
	pin *Session
}

// begin returns the context to operate on and, when it came from the pool,
// the session to release via end.
func (b binding) begin() (*core.Ctx, *Session) {
	if b.pin != nil {
		return b.pin.c, nil
	}
	s := b.rt.acquire()
	return s.c, s
}

// beginErr is begin for methods with an error result (ErrClosed flows out
// instead of panicking).
func (b binding) beginErr() (*core.Ctx, *Session, error) {
	if b.pin != nil {
		return b.pin.c, nil, nil
	}
	s, err := b.rt.acquireErr()
	if err != nil {
		return nil, nil, err
	}
	return s.c, s, nil
}

func (b binding) end(s *Session) { b.rt.release(s) }
