package logfree

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/pmem"
)

// Sentinel errors of the v3 surface. Every error returned by a Runtime,
// structure or Batch matches one of these through errors.Is: core-layer
// causes are wrapped with %w, so callers never import internal packages to
// classify failures.
var (
	// ErrFull reports device exhaustion: the simulated NVRAM has no page
	// left for the allocation. Callers implementing caches may evict and
	// retry (see AvailableBytes).
	ErrFull = errors.New("logfree: device full")
	// ErrKindMismatch reports an open of an existing name under a different
	// structure kind.
	ErrKindMismatch = errors.New("logfree: structure has a different kind")
	// ErrClosed reports an operation on a closed Runtime (Close was called,
	// or the runtime was invalidated by SimulateCrash). Methods without an
	// error result panic with an ErrClosed-wrapping error instead.
	ErrClosed = errors.New("logfree: runtime is closed")
	// ErrBatchTooLarge reports a Batch.Commit of more than MaxBatchOps
	// operations.
	ErrBatchTooLarge = errors.New("logfree: batch too large")

	// ErrNotKeyed reports OpenOrCreate on a kind with no key/value
	// abstraction (queues and stacks); use the typed Runtime methods.
	ErrNotKeyed = errors.New("logfree: kind has no map abstraction")
	// ErrKeyRange reports a uint64-plane byte key that is not exactly 8
	// bytes or does not decode into [MinKey, MaxKey].
	ErrKeyRange = errors.New("logfree: key outside the uint64 key range")
	// ErrValueSize reports a uint64-plane value whose length is not exactly
	// 8 bytes.
	ErrValueSize = errors.New("logfree: uint64-plane values must be 8 bytes")
	// ErrNoItemMeta reports a batch op carrying per-entry meta/aux against a
	// kind whose entries store none (the uint64 plane).
	ErrNoItemMeta = errors.New("logfree: kind stores no per-entry meta/aux")
)

// Re-exported core sentinels (argument errors; returned as-is).
var (
	// ErrTooLarge reports a byte-map entry exceeding the largest slab class.
	ErrTooLarge = core.ErrTooLarge
	// ErrBadKey reports an empty or oversized byte key.
	ErrBadKey = core.ErrBadKey
)

// Deprecated aliases of the v2 surface.
var (
	// ErrKind is the v2 name of ErrKindMismatch.
	//
	// Deprecated: use ErrKindMismatch.
	ErrKind = ErrKindMismatch
	// ErrOutOfMemory is the core cause wrapped by ErrFull; errors.Is against
	// either matches.
	//
	// Deprecated: use ErrFull.
	ErrOutOfMemory = pmem.ErrOutOfMemory
)

// wrapErr maps core-layer errors onto the public taxonomy, preserving the
// cause chain (%w on both sentinels, so errors.Is matches old and new).
func wrapErr(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, pmem.ErrOutOfMemory) {
		return fmt.Errorf("%w: %w", ErrFull, err)
	}
	return err
}
