package logfree

import "errors"

// Errors returned by the runtime.
var (
	// ErrKind reports an open of an existing name under a different
	// structure kind.
	ErrKind = errors.New("logfree: structure has a different kind")
	// ErrNotKeyed reports OpenOrCreate on a kind with no key/value
	// abstraction (queues and stacks); use the typed Runtime methods.
	ErrNotKeyed = errors.New("logfree: kind has no map abstraction")
	// ErrKeyRange reports a uint64-plane byte key that is not exactly 8
	// bytes or does not decode into [MinKey, MaxKey].
	ErrKeyRange = errors.New("logfree: key outside the uint64 key range")
	// ErrValueSize reports a uint64-plane value whose length is not exactly
	// 8 bytes.
	ErrValueSize = errors.New("logfree: uint64-plane values must be 8 bytes")
)
