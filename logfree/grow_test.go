package logfree_test

// Runtime-level elastic capacity: Grow under live data, durability of grown
// state across SimulateCrash and across file reopen, and the adopt semantics
// of WithMaxSize.

import (
	"errors"
	"fmt"
	"path/filepath"
	"testing"

	"repro/logfree"
)

func TestRuntimeGrowMem(t *testing.T) {
	rt, err := logfree.New(logfree.WithSize(512<<10), logfree.WithMaxSize(8<<20))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if got := rt.SizeBytes(); got != 512<<10 {
		t.Fatalf("SizeBytes = %d, want %d", got, 512<<10)
	}
	if got := rt.MaxSizeBytes(); got != 8<<20 {
		t.Fatalf("MaxSizeBytes = %d, want %d", got, 8<<20)
	}

	m, err := rt.Map("t", 64)
	if err != nil {
		t.Fatal(err)
	}
	// Fill past the initial capacity, growing on demand: every ErrFull is
	// recoverable by a Grow, and no write is lost across one.
	val := make([]byte, 1024)
	n := 0
	for n < 2000 {
		key := []byte(fmt.Sprintf("key-%06d", n))
		err := m.Set(key, val)
		if errors.Is(err, logfree.ErrFull) {
			if gerr := rt.Grow(rt.SizeBytes() * 2); gerr != nil {
				t.Fatalf("grow at n=%d: %v", n, gerr)
			}
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if rt.SizeBytes() <= 512<<10 {
		t.Fatal("fill of 2000×1KB entries should have forced at least one grow")
	}

	rt2, err := rt.SimulateCrash()
	if err != nil {
		t.Fatal(err)
	}
	defer rt2.Close()
	if got := rt2.SizeBytes(); got != rt.SizeBytes() {
		t.Fatalf("crash lost the grown capacity: %d, want %d", got, rt.SizeBytes())
	}
	m2, err := rt2.Map("t", 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, ok := m2.Get([]byte(fmt.Sprintf("key-%06d", i))); !ok {
			t.Fatalf("key-%06d lost across crash", i)
		}
	}
}

func TestRuntimeGrowFileReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "grow.pool")
	rt, err := logfree.New(logfree.WithSize(512<<10), logfree.WithMaxSize(8<<20),
		logfree.WithFile(path))
	if err != nil {
		t.Fatal(err)
	}
	m, err := rt.Map("t", 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Set([]byte("before"), []byte("grow")); err != nil {
		t.Fatal(err)
	}
	if err := rt.Grow(2 << 20); err != nil {
		t.Fatal(err)
	}
	if err := m.Set([]byte("after"), []byte("grow")); err != nil {
		t.Fatal(err)
	}
	grown := rt.SizeBytes()
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen with the ORIGINAL WithSize: WithMaxSize adopts the grown
	// capacity instead of erroring on the disagreement.
	rt2, err := logfree.New(logfree.WithSize(512<<10), logfree.WithMaxSize(8<<20),
		logfree.WithFile(path))
	if err != nil {
		t.Fatal(err)
	}
	defer rt2.Close()
	if !rt2.Recovered() {
		t.Fatal("reopen must recover, not reformat")
	}
	if got := rt2.SizeBytes(); got != grown {
		t.Fatalf("reopened SizeBytes = %d, want %d", got, grown)
	}
	m2, err := rt2.Map("t", 64)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"before", "after"} {
		if v, ok := m2.Get([]byte(k)); !ok || string(v) != "grow" {
			t.Fatalf("key %q lost across grow+reopen (ok=%v v=%q)", k, ok, v)
		}
	}
}
