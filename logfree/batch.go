package logfree

import (
	"fmt"

	"repro/internal/core"
)

// MaxBatchOps bounds Batch.Commit: a group commit briefly holds the stripe
// locks of every key it touches, so batches are kept small enough that one
// commit cannot monopolize the map. Commit of a larger batch fails with
// ErrBatchTooLarge before anything is applied.
const MaxBatchOps = 1024

// Batch collects Set/SetItem/Delete operations against one map and applies
// them on Commit under a single epoch section with one shared content fence
// before the per-op publishing links: N buffered writes pay ~N+1 NVRAM sync
// waits instead of the 2N they would cost issued singly.
//
// Batches are NOT transactions. Each operation publishes through its own
// atomic durable point, in batch order, so a crash during Commit leaves a
// durable per-op prefix of the batch — every individual operation is still
// crash-atomic (old value or new value, never a torn mix), and an operation
// is never durable before the ones buffered ahead of it.
//
// Key and value bytes are copied when buffered; callers may reuse their
// slices immediately. A Batch is not safe for concurrent use; Commit may be
// called from any goroutine (it draws its own session unless the map view
// is pinned).
type Batch struct {
	apply func(ops []core.BytesOp) error
	ops   []core.BytesOp

	// arena backs the buffered key/value copies: one growing buffer instead
	// of two allocations per op, reused across Commit/Reset cycles. Ops
	// hold subslices; an arena growth leaves earlier subslices pointing
	// into the (immutable, still-referenced) previous backing array.
	arena []byte
}

// buf copies p onto the arena and returns the stable view of the copy.
func (b *Batch) buf(p []byte) []byte {
	if len(p) == 0 {
		return nil
	}
	b.arena = append(b.arena, p...)
	return b.arena[len(b.arena)-len(p):]
}

// Set buffers a durable upsert of key to value (meta 0, aux 0).
func (b *Batch) Set(key, value []byte) *Batch {
	return b.SetItem(key, value, 0, 0)
}

// SetItem buffers a durable upsert of key to value with the entry's
// metadata field and aux word.
func (b *Batch) SetItem(key, value []byte, meta uint16, aux uint64) *Batch {
	b.ops = append(b.ops, core.BytesOp{
		Key:   b.buf(key),
		Value: b.buf(value),
		Meta:  meta,
		Aux:   aux,
	})
	return b
}

// Delete buffers a durable delete of key.
func (b *Batch) Delete(key []byte) *Batch {
	b.ops = append(b.ops, core.BytesOp{Del: true, Key: b.buf(key)})
	return b
}

// Len reports the number of buffered operations.
func (b *Batch) Len() int { return len(b.ops) }

// Reset discards the buffered operations, keeping the backing storage for
// reuse.
func (b *Batch) Reset() *Batch {
	b.ops = b.ops[:0]
	b.arena = b.arena[:0]
	return b
}

// Commit applies the buffered operations in order (see the type comment for
// durability and crash semantics) and resets the batch on success. On error
// the batch keeps its ops: an ErrFull commit may have applied a prefix
// (exactly as a crash would); argument errors (ErrBadKey, ErrTooLarge,
// ErrBatchTooLarge) are checked up front and apply nothing.
func (b *Batch) Commit() error {
	if len(b.ops) > MaxBatchOps {
		return fmt.Errorf("%w: %d ops (max %d)", ErrBatchTooLarge, len(b.ops), MaxBatchOps)
	}
	if len(b.ops) == 0 {
		return nil
	}
	if err := b.apply(b.ops); err != nil {
		return err
	}
	b.Reset()
	return nil
}
