// Durability policy and device specification — the v4 surface that replaced
// the scattered WithFile/WithFileSync/WithBackend knobs. A runtime is
// configured by naming WHERE the persisted image lives (DeviceSpec, one
// value) and WHAT an acknowledged operation means (Durability, one value);
// every backend-specific behaviour — fence syscalls, link-cache legality,
// flush timers — falls out of that pair instead of being toggled per flag.

package logfree

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/nvram"
)

// DeviceKind enumerates the persistence substrates a DeviceSpec can name.
type DeviceKind uint8

// Device kinds. The zero value is the in-process simulator.
const (
	// DeviceMem is the in-process simulated NVRAM (the default): fastest,
	// survives nothing but SimulateCrash/SaveImage.
	DeviceMem DeviceKind = iota
	// DeviceFile is an mmap'd backing file: write-backs land in the page
	// cache (kill -9 safe); machine-crash durability is governed by the
	// Durability policy via the background msync pipeline.
	DeviceFile
	// DeviceDAX is a direct-access pmem mapping (a /dev/dax device or a
	// file on an fsdax filesystem): fences persist lines with CLWB+SFENCE,
	// no syscalls. Over a regular file it degrades to a shared mapping
	// (still kill -9 safe) — see nvram.DAXBackend.
	DeviceDAX
	// DeviceBackend is a caller-constructed nvram.Backend.
	DeviceBackend
)

func (k DeviceKind) String() string {
	switch k {
	case DeviceMem:
		return "mem"
	case DeviceFile:
		return "file"
	case DeviceDAX:
		return "dax"
	case DeviceBackend:
		return "backend"
	}
	return "unknown"
}

// DeviceSpec names the persistence substrate of a runtime. Build one with
// MemDevice, FileDevice, DAXDevice or BackendDevice and pass it to
// WithDevice. The zero value is MemDevice().
type DeviceSpec struct {
	// Kind selects the substrate.
	Kind DeviceKind
	// Path is the backing file or DAX device path (file and dax kinds).
	Path string
	// Backend is the caller-constructed backend (backend kind).
	Backend nvram.Backend
}

// MemDevice specifies the in-process simulated NVRAM (the default).
func MemDevice() DeviceSpec { return DeviceSpec{Kind: DeviceMem} }

// FileDevice specifies an mmap'd backing file at path. An empty path means
// MemDevice (so conditional wiring composes).
func FileDevice(path string) DeviceSpec {
	if path == "" {
		return MemDevice()
	}
	return DeviceSpec{Kind: DeviceFile, Path: path}
}

// DAXDevice specifies a direct-access pmem mapping at path (a /dev/dax
// device, an fsdax file, or — degraded but functional — any regular file).
// An empty path means MemDevice.
func DAXDevice(path string) DeviceSpec {
	if path == "" {
		return MemDevice()
	}
	return DeviceSpec{Kind: DeviceDAX, Path: path}
}

// BackendDevice specifies a caller-constructed persistence backend. A nil
// backend means MemDevice.
func BackendDevice(b nvram.Backend) DeviceSpec {
	if b == nil {
		return MemDevice()
	}
	return DeviceSpec{Kind: DeviceBackend, Backend: b}
}

// durMode is the internal Durability discriminant. The zero value is the
// default policy (Synced) so a zero Durability behaves like v3 defaults.
type durMode uint8

const (
	durSynced durMode = iota
	durStrict
	durBuffered
)

// Durability is the policy for what an acknowledged operation means. Build
// one with Strict, Synced or Buffered and pass it to WithDurability. The
// zero value is Synced().
//
// What each policy guarantees, by device kind:
//
//	           process crash (kill -9)   machine crash (power loss)
//	Strict     survives                  survives (fence waits on fdatasync)
//	Synced     survives                  best effort (async msync, no wait)
//	Buffered   survives minus <=MaxStaleness of acked ops, both cases
//
// On DeviceMem nothing survives process death regardless (use SaveImage);
// on DeviceDAX with a real MAP_SYNC mapping, Strict and Synced are
// identical — CLWB+SFENCE at the fence IS full machine-crash durability,
// with no syscall to wait for.
//
// Buffered additionally unlocks the paper's link cache on durable devices:
// publishing links may sit in the volatile cache, flushed by a background
// timer every MaxStaleness, trading a bounded window of acked operations
// for mem-like fence cost.
type Durability struct {
	mode         durMode
	maxStaleness time.Duration
}

// Strict acknowledges an operation only once it is machine-crash durable:
// every linearizing fence waits for the durability pipeline's watermark
// (file: group-committed fdatasync; DAX: nothing to wait for).
func Strict() Durability { return Durability{mode: durStrict} }

// Synced is the default policy: fences hand dirty ranges to the background
// syncer and return. Acked operations always survive process death on
// durable devices; a machine crash may lose the not-yet-synced tail.
func Synced() Durability { return Durability{mode: durSynced} }

// Buffered bounds staleness instead of eliminating it: durability work
// (msync/fdatasync batches, link-cache flushes) runs on a timer every
// maxStaleness, so a crash of either kind loses at most that window of
// acknowledged operations. maxStaleness <= 0 means the default
// (nvram.DefaultMaxStaleness, 100ms).
func Buffered(maxStaleness time.Duration) Durability {
	return Durability{mode: durBuffered, maxStaleness: maxStaleness}
}

// IsStrict reports whether this is the Strict policy.
func (d Durability) IsStrict() bool { return d.mode == durStrict }

// IsBuffered reports whether this is a Buffered policy.
func (d Durability) IsBuffered() bool { return d.mode == durBuffered }

// MaxStaleness returns the buffered staleness bound (the default when the
// policy was built with <= 0), or 0 for non-buffered policies.
func (d Durability) MaxStaleness() time.Duration {
	if d.mode != durBuffered {
		return 0
	}
	if d.maxStaleness <= 0 {
		return nvram.DefaultMaxStaleness
	}
	return d.maxStaleness
}

func (d Durability) String() string {
	switch d.mode {
	case durStrict:
		return "strict"
	case durBuffered:
		return fmt.Sprintf("buffered:%v", d.MaxStaleness())
	}
	return "synced"
}

// ParseDurability parses a policy from its flag form: "strict", "synced",
// or "buffered[:duration]" (e.g. "buffered:250ms").
func ParseDurability(s string) (Durability, error) {
	switch {
	case s == "strict":
		return Strict(), nil
	case s == "" || s == "synced":
		return Synced(), nil
	case s == "buffered":
		return Buffered(0), nil
	case strings.HasPrefix(s, "buffered:"):
		d, err := time.ParseDuration(strings.TrimPrefix(s, "buffered:"))
		if err != nil || d <= 0 {
			return Durability{}, fmt.Errorf("logfree: bad buffered staleness in %q", s)
		}
		return Buffered(d), nil
	}
	return Durability{}, fmt.Errorf("logfree: unknown durability %q (want strict, synced, or buffered[:duration])", s)
}

// syncPolicy maps the policy onto the nvram file-syncer modes.
func (d Durability) syncPolicy() nvram.SyncPolicy {
	switch d.mode {
	case durStrict:
		return nvram.SyncPolicy{Mode: nvram.SyncStrict}
	case durBuffered:
		return nvram.SyncPolicy{Mode: nvram.SyncBuffered, MaxStaleness: d.MaxStaleness()}
	}
	return nvram.SyncPolicy{Mode: nvram.SyncEager}
}

// syncPolicySetter is the optional backend surface the policy is threaded
// through (FileBackend; caller backends may implement it too).
type syncPolicySetter interface{ SetSyncPolicy(nvram.SyncPolicy) }
