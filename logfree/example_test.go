package logfree_test

import (
	"fmt"

	"repro/logfree"
)

// The canonical v2 lifecycle: open-or-create a byte-key map, update it,
// crash, recover, read.
func Example() {
	rt, _ := logfree.New(logfree.WithSize(32<<20), logfree.WithMaxThreads(2),
		logfree.WithLinkCache(true))
	h := rt.Handle(0)

	users, _ := rt.OpenOrCreate(h, "users", logfree.Spec{Buckets: 256})
	users.Set(h, []byte("alice"), []byte("pro"))
	users.Set(h, []byte("bob"), []byte("free"))
	users.Delete(h, []byte("bob"))

	rt.Drain() // make deferred link-cache work durable before pulling the plug
	rt2, _ := rt.SimulateCrash()

	h2 := rt2.Handle(0)
	users2, _ := rt2.OpenOrCreate(h2, "users", logfree.Spec{})
	v, ok := users2.Get(h2, []byte("alice"))
	fmt.Println(string(v), ok)
	fmt.Println(users2.Contains(h2, []byte("bob")))
	// Output:
	// pro true
	// false
}

// The typed uint64 wrappers remain as thin veneers; ordered structures
// support in-order iteration.
func ExampleBST_Range() {
	rt, _ := logfree.New(logfree.WithSize(32 << 20))
	h := rt.Handle(0)
	t, _ := rt.BST(h, "scores")
	for _, k := range []uint64{30, 10, 20} {
		t.Insert(h, k, k*10)
	}
	t.Range(h, func(k, v uint64) bool {
		fmt.Println(k, v)
		return true
	})
	// Output:
	// 10 100
	// 20 200
	// 30 300
}

// A durable FIFO queue survives power failures with order intact.
func ExampleQueue() {
	rt, _ := logfree.New(logfree.WithSize(32 << 20))
	h := rt.Handle(0)
	q, _ := rt.Queue(h, "jobs")
	q.Enqueue(h, 100)
	q.Enqueue(h, 200)

	rt2, _ := rt.SimulateCrash()
	q2, _ := rt2.Queue(rt2.Handle(0), "jobs")
	h2 := rt2.Handle(0)
	for {
		v, ok := q2.Dequeue(h2)
		if !ok {
			break
		}
		fmt.Println(v)
	}
	// Output:
	// 100
	// 200
}
