package logfree_test

import (
	"fmt"

	"repro/logfree"
)

// The canonical v3 lifecycle: open-or-create a byte-key map, update it,
// crash, recover, read — no per-thread handles anywhere.
func Example() {
	rt, _ := logfree.New(logfree.WithSize(32<<20), logfree.WithLinkCache(true))

	users, _ := rt.OpenOrCreate("users", logfree.Spec{Buckets: 256})
	users.Set([]byte("alice"), []byte("pro"))
	users.Set([]byte("bob"), []byte("free"))
	users.Delete([]byte("bob"))

	rt.Drain() // make deferred link-cache work durable before pulling the plug
	rt2, _ := rt.SimulateCrash()

	users2, _ := rt2.OpenOrCreate("users", logfree.Spec{})
	v, ok := users2.Get([]byte("alice"))
	fmt.Println(string(v), ok)
	fmt.Println(users2.Contains([]byte("bob")))
	// Output:
	// pro true
	// false
}

// Batch amortizes the per-write NVRAM sync waits: N buffered writes commit
// under one shared content fence (~N+1 pauses instead of 2N), each op still
// individually crash-atomic, in order.
func ExampleBatch() {
	rt, _ := logfree.New(logfree.WithSize(32 << 20))
	m, _ := rt.OpenOrCreate("events", logfree.Spec{})

	b := m.Batch()
	for i := 0; i < 3; i++ {
		b.Set([]byte(fmt.Sprintf("event-%d", i)), []byte("payload"))
	}
	if err := b.Commit(); err != nil {
		fmt.Println("commit:", err)
	}
	fmt.Println(m.Len())
	// Output:
	// 3
}

// The typed uint64 wrappers remain as thin veneers; ordered structures
// iterate in key order via range-over-func.
func ExampleBST_All() {
	rt, _ := logfree.New(logfree.WithSize(32 << 20))
	t, _ := rt.BST("scores")
	for _, k := range []uint64{30, 10, 20} {
		t.Insert(k, k*10)
	}
	for k, v := range t.All() {
		fmt.Println(k, v)
	}
	// Output:
	// 10 100
	// 20 200
	// 30 300
}

// A durable FIFO queue survives power failures with order intact.
func ExampleQueue() {
	rt, _ := logfree.New(logfree.WithSize(32 << 20))
	q, _ := rt.Queue("jobs")
	q.Enqueue(100)
	q.Enqueue(200)

	rt2, _ := rt.SimulateCrash()
	q2, _ := rt2.Queue("jobs")
	for {
		v, ok := q2.Dequeue()
		if !ok {
			break
		}
		fmt.Println(v)
	}
	// Output:
	// 100
	// 200
}
