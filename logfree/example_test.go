package logfree_test

import (
	"fmt"

	"repro/logfree"
)

// The canonical lifecycle: create, update, crash, recover, read.
func Example() {
	rt, _ := logfree.New(logfree.Config{Size: 32 << 20, MaxThreads: 2, LinkCache: true})
	h := rt.Handle(0)

	users, _ := rt.CreateHashTable(h, "users", 256)
	users.Insert(h, 42, 7)
	users.Insert(h, 43, 9)
	users.Delete(h, 43)

	rt.Drain() // make deferred link-cache work durable before pulling the plug
	rt2, _ := rt.SimulateCrash()

	users2, _ := rt2.OpenHashTable("users")
	h2 := rt2.Handle(0)
	v, ok := users2.Search(h2, 42)
	fmt.Println(v, ok)
	fmt.Println(users2.Contains(h2, 43))
	// Output:
	// 7 true
	// false
}

// Ordered structures support in-order iteration.
func ExampleBST_Range() {
	rt, _ := logfree.New(logfree.Config{Size: 32 << 20})
	h := rt.Handle(0)
	t, _ := rt.CreateBST(h, "scores")
	for _, k := range []uint64{30, 10, 20} {
		t.Insert(h, k, k*10)
	}
	t.Range(h, func(k, v uint64) bool {
		fmt.Println(k, v)
		return true
	})
	// Output:
	// 10 100
	// 20 200
	// 30 300
}

// A durable FIFO queue survives power failures with order intact.
func ExampleQueue() {
	rt, _ := logfree.New(logfree.Config{Size: 32 << 20})
	h := rt.Handle(0)
	q, _ := rt.CreateQueue(h, "jobs")
	q.Enqueue(h, 100)
	q.Enqueue(h, 200)

	rt2, _ := rt.SimulateCrash()
	q2, _ := rt2.OpenQueue("jobs")
	h2 := rt2.Handle(0)
	for {
		v, ok := q2.Dequeue(h2)
		if !ok {
			break
		}
		fmt.Println(v)
	}
	// Output:
	// 100
	// 200
}
