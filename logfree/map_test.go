package logfree

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

func TestByteMapBasics(t *testing.T) {
	rt := newRT(t)
	m, err := rt.Map("kv", 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Set([]byte("hello"), []byte("world")); err != nil {
		t.Fatal(err)
	}
	if v, ok := m.Get([]byte("hello")); !ok || string(v) != "world" {
		t.Fatalf("Get = %q,%v", v, ok)
	}
	if _, ok := m.Get([]byte("nope")); ok {
		t.Fatal("missing key found")
	}
	if err := m.Set([]byte("hello"), []byte("mundo, otra vez")); err != nil {
		t.Fatal(err)
	}
	if v, ok := m.Get([]byte("hello")); !ok || string(v) != "mundo, otra vez" {
		t.Fatalf("after overwrite: %q,%v", v, ok)
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d, want 1", m.Len())
	}
	if !m.Delete([]byte("hello")) {
		t.Fatal("delete failed")
	}
	if m.Delete([]byte("hello")) {
		t.Fatal("double delete succeeded")
	}
	if m.Contains([]byte("hello")) {
		t.Fatal("deleted key still present")
	}
}

func TestByteMapMetaAux(t *testing.T) {
	rt := newRT(t)
	m, _ := rt.Map("kv", 64)
	created, err := m.SetItem([]byte("k"), []byte("v"), 7, 99)
	if err != nil || !created {
		t.Fatalf("SetItem = %v,%v", created, err)
	}
	v, meta, aux, ok := m.GetItem([]byte("k"))
	if !ok || string(v) != "v" || meta != 7 || aux != 99 {
		t.Fatalf("GetItem = %q,%d,%d,%v", v, meta, aux, ok)
	}
	if !m.SetAux([]byte("k"), 123) {
		t.Fatal("SetAux failed")
	}
	if _, _, aux, _ := m.GetItem([]byte("k")); aux != 123 {
		t.Fatalf("aux after SetAux = %d", aux)
	}
	if m.SetAux([]byte("absent"), 1) {
		t.Fatal("SetAux on missing key succeeded")
	}
	created, err = m.SetItem([]byte("k"), []byte("v2"), 8, 100)
	if err != nil || created {
		t.Fatalf("replacing SetItem = %v,%v", created, err)
	}
	// The Items iterator surfaces meta and aux.
	for k, it := range m.Items() {
		if string(k) != "k" || string(it.Value) != "v2" || it.Meta != 8 || it.Aux != 100 {
			t.Fatalf("Items = %q -> %+v", k, it)
		}
	}
}

func TestByteMapLimits(t *testing.T) {
	rt := newRT(t)
	m, _ := rt.Map("kv", 64)
	if err := m.Set(nil, []byte("v")); !errors.Is(err, ErrBadKey) {
		t.Fatalf("empty key: %v", err)
	}
	if err := m.Set(bytes.Repeat([]byte("k"), 600), []byte("v")); !errors.Is(err, ErrBadKey) {
		t.Fatalf("oversized key: %v", err)
	}
	if err := m.Set([]byte("k"), make([]byte, 4096)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized value: %v", err)
	}
	// The largest storable entry fits exactly.
	if err := m.Set([]byte("k"), make([]byte, 2048-32-1)); err != nil {
		t.Fatalf("max-size value rejected: %v", err)
	}
}

func TestByteMapManyKeysCrashRecover(t *testing.T) {
	rt := newRT(t, WithLinkCache(true))
	m, _ := rt.Map("kv", 128)
	for i := 0; i < 1000; i++ {
		key := []byte(fmt.Sprintf("key-%04d", i))
		val := bytes.Repeat([]byte{byte(i)}, 1+i%300)
		if err := m.Set(key, val); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 1000; i += 4 {
		m.Delete([]byte(fmt.Sprintf("key-%04d", i)))
	}
	rt.Drain()
	rt2, err := rt.SimulateCrash()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := rt2.Map("kv", 128)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		key := []byte(fmt.Sprintf("key-%04d", i))
		v, ok := m2.Get(key)
		want := i%4 != 0
		if ok != want {
			t.Fatalf("key %d after recovery: present=%v want %v", i, ok, want)
		}
		if ok && !bytes.Equal(v, bytes.Repeat([]byte{byte(i)}, 1+i%300)) {
			t.Fatalf("key %d value corrupt after recovery (len %d)", i, len(v))
		}
	}
	if n := m2.Len(); n != 750 {
		t.Fatalf("recovered Len = %d, want 750", n)
	}
}

// TestHashCollisionKeysStayDistinct is the regression test for the v1
// string-key aliasing hazard: the old memcached layer clamped out-of-range
// key hashes onto a single index key, so any two keys whose hashes clamped
// together could alias. The bytes layer must keep same-index-key entries
// distinct — full-key verification plus a durable collision chain — and the
// chain must survive a crash. The hash override forces every key onto ONE
// index key, the worst case.
func TestHashCollisionKeysStayDistinct(t *testing.T) {
	SetHashForTesting(func([]byte) uint64 { return MinKey })
	defer SetHashForTesting(nil)

	rt := newRT(t, WithLinkCache(true))
	m, err := rt.Map("collide", 64)
	if err != nil {
		t.Fatal(err)
	}
	const n = 40
	for i := 0; i < n; i++ {
		if err := m.Set([]byte(fmt.Sprintf("alias-%d", i)), []byte(fmt.Sprintf("val-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// All keys collide on one index key yet stay individually addressable.
	for i := 0; i < n; i++ {
		v, ok := m.Get([]byte(fmt.Sprintf("alias-%d", i)))
		if !ok || string(v) != fmt.Sprintf("val-%d", i) {
			t.Fatalf("colliding key %d aliased: %q,%v", i, v, ok)
		}
	}
	// Overwrites and deletes stay per-key, head, mid-chain and tail alike.
	if err := m.Set([]byte("alias-0"), []byte("rewritten-0")); err != nil {
		t.Fatal(err)
	}
	if err := m.Set([]byte(fmt.Sprintf("alias-%d", n/2)), []byte("rewritten-mid")); err != nil {
		t.Fatal(err)
	}
	if !m.Delete([]byte("alias-1")) {
		t.Fatal("delete of colliding key failed")
	}
	rt.Drain()
	rt2, err := rt.SimulateCrash()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := rt2.Map("collide", 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		key := []byte(fmt.Sprintf("alias-%d", i))
		want := fmt.Sprintf("val-%d", i)
		switch i {
		case 0:
			want = "rewritten-0"
		case n / 2:
			want = "rewritten-mid"
		case 1:
			if m2.Contains(key) {
				t.Fatal("deleted colliding key resurrected after crash")
			}
			continue
		}
		v, ok := m2.Get(key)
		if !ok || string(v) != want {
			t.Fatalf("colliding key %d after crash: %q,%v want %q", i, v, ok, want)
		}
	}
	if n2 := m2.Len(); n2 != n-1 {
		t.Fatalf("recovered Len = %d, want %d", n2, n-1)
	}
}

func TestOpenOrCreateU64Kinds(t *testing.T) {
	rt := newRT(t)
	for _, kind := range []Kind{KindList, KindHashTable, KindSkipList, KindBST} {
		name := "u64-" + kind.String()
		m, err := rt.OpenOrCreate(name, Spec{Kind: kind, Buckets: 64})
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if m.Kind() != kind || m.Name() != name {
			t.Fatalf("%v: Kind/Name = %v/%q", kind, m.Kind(), m.Name())
		}
		key := []byte{0, 0, 0, 0, 0, 0, 0, 42}
		val := []byte("12345678")
		if err := m.Set(key, val); err != nil {
			t.Fatalf("%v: Set: %v", kind, err)
		}
		if v, ok := m.Get(key); !ok || !bytes.Equal(v, val) {
			t.Fatalf("%v: Get = %q,%v", kind, v, ok)
		}
		// Upsert semantics.
		if err := m.Set(key, []byte("abcdefgh")); err != nil {
			t.Fatal(err)
		}
		if v, _ := m.Get(key); string(v) != "abcdefgh" {
			t.Fatalf("%v: overwrite lost: %q", kind, v)
		}
		if m.Len() != 1 {
			t.Fatalf("%v: Len = %d", kind, m.Len())
		}
		for k := range m.All() {
			if !bytes.Equal(k, key) {
				t.Fatalf("%v: All key = %v", kind, k)
			}
		}
		if !m.Delete(key) {
			t.Fatalf("%v: Delete failed", kind)
		}
		// Validation errors: keys are a fixed 8 bytes (variable widths would
		// alias, e.g. {0,42} and {42}), values exactly 8 bytes.
		if err := m.Set(nil, val); !errors.Is(err, ErrKeyRange) {
			t.Fatalf("%v: empty key: %v", kind, err)
		}
		if err := m.Set([]byte{42}, val); !errors.Is(err, ErrKeyRange) {
			t.Fatalf("%v: short key: %v", kind, err)
		}
		if err := m.Set([]byte("ninebytes"), val); !errors.Is(err, ErrKeyRange) {
			t.Fatalf("%v: long key: %v", kind, err)
		}
		if err := m.Set(key, []byte("short")); !errors.Is(err, ErrValueSize) {
			t.Fatalf("%v: short value: %v", kind, err)
		}
	}
}

func TestOpenOrCreateDefaultsToMap(t *testing.T) {
	rt := newRT(t)
	m, err := rt.OpenOrCreate("d", Spec{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind() != KindMap {
		t.Fatalf("default kind = %v", m.Kind())
	}
	if _, ok := m.(*ByteMap); !ok {
		t.Fatalf("default map is %T", m)
	}
}

func TestOpenOrCreateUnkeyedKinds(t *testing.T) {
	rt := newRT(t)
	if _, err := rt.OpenOrCreate("q", Spec{Kind: KindQueue}); !errors.Is(err, ErrNotKeyed) {
		t.Fatalf("queue OpenOrCreate: %v", err)
	}
	if _, err := rt.OpenOrCreate("s", Spec{Kind: KindStack}); !errors.Is(err, ErrNotKeyed) {
		t.Fatalf("stack OpenOrCreate: %v", err)
	}
}

// TestIteratorEarlyBreakAndNesting: range-over-func iterators stop cleanly
// on break, and loop bodies may call operations on the same map (they draw
// their own sessions — with v2 handles this was forbidden).
func TestIteratorEarlyBreakAndNesting(t *testing.T) {
	rt := newRT(t)
	om, err := rt.OrderedMap("it")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := om.Set([]byte(fmt.Sprintf("k-%02d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	n := 0
	for range om.All() {
		n++
		if n == 5 {
			break
		}
	}
	if n != 5 {
		t.Fatalf("early break visited %d", n)
	}
	// Nested point reads from inside an open iteration.
	n = 0
	for k := range om.Scan([]byte("k-05"), []byte("k-10")) {
		if _, ok := om.Get(k); !ok {
			t.Fatalf("nested Get(%q) missed", k)
		}
		n++
	}
	if n != 5 {
		t.Fatalf("window visited %d keys, want 5", n)
	}
}
