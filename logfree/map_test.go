package logfree

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

func TestByteMapBasics(t *testing.T) {
	rt := newRT(t)
	h := rt.Handle(0)
	m, err := rt.Map(h, "kv", 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Set(h, []byte("hello"), []byte("world")); err != nil {
		t.Fatal(err)
	}
	if v, ok := m.Get(h, []byte("hello")); !ok || string(v) != "world" {
		t.Fatalf("Get = %q,%v", v, ok)
	}
	if _, ok := m.Get(h, []byte("nope")); ok {
		t.Fatal("missing key found")
	}
	if err := m.Set(h, []byte("hello"), []byte("mundo, otra vez")); err != nil {
		t.Fatal(err)
	}
	if v, ok := m.Get(h, []byte("hello")); !ok || string(v) != "mundo, otra vez" {
		t.Fatalf("after overwrite: %q,%v", v, ok)
	}
	if m.Len(h) != 1 {
		t.Fatalf("Len = %d, want 1", m.Len(h))
	}
	if !m.Delete(h, []byte("hello")) {
		t.Fatal("delete failed")
	}
	if m.Delete(h, []byte("hello")) {
		t.Fatal("double delete succeeded")
	}
	if m.Contains(h, []byte("hello")) {
		t.Fatal("deleted key still present")
	}
}

func TestByteMapMetaAux(t *testing.T) {
	rt := newRT(t)
	h := rt.Handle(0)
	m, _ := rt.Map(h, "kv", 64)
	created, err := m.SetItem(h, []byte("k"), []byte("v"), 7, 99)
	if err != nil || !created {
		t.Fatalf("SetItem = %v,%v", created, err)
	}
	v, meta, aux, ok := m.GetItem(h, []byte("k"))
	if !ok || string(v) != "v" || meta != 7 || aux != 99 {
		t.Fatalf("GetItem = %q,%d,%d,%v", v, meta, aux, ok)
	}
	if !m.SetAux(h, []byte("k"), 123) {
		t.Fatal("SetAux failed")
	}
	if _, _, aux, _ := m.GetItem(h, []byte("k")); aux != 123 {
		t.Fatalf("aux after SetAux = %d", aux)
	}
	if m.SetAux(h, []byte("absent"), 1) {
		t.Fatal("SetAux on missing key succeeded")
	}
	created, err = m.SetItem(h, []byte("k"), []byte("v2"), 8, 100)
	if err != nil || created {
		t.Fatalf("replacing SetItem = %v,%v", created, err)
	}
}

func TestByteMapLimits(t *testing.T) {
	rt := newRT(t)
	h := rt.Handle(0)
	m, _ := rt.Map(h, "kv", 64)
	if err := m.Set(h, nil, []byte("v")); !errors.Is(err, ErrBadKey) {
		t.Fatalf("empty key: %v", err)
	}
	if err := m.Set(h, bytes.Repeat([]byte("k"), 600), []byte("v")); !errors.Is(err, ErrBadKey) {
		t.Fatalf("oversized key: %v", err)
	}
	if err := m.Set(h, []byte("k"), make([]byte, 4096)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized value: %v", err)
	}
	// The largest storable entry fits exactly.
	if err := m.Set(h, []byte("k"), make([]byte, 2048-32-1)); err != nil {
		t.Fatalf("max-size value rejected: %v", err)
	}
}

func TestByteMapManyKeysCrashRecover(t *testing.T) {
	rt := newRT(t, WithLinkCache(true))
	h := rt.Handle(0)
	m, _ := rt.Map(h, "kv", 128)
	for i := 0; i < 1000; i++ {
		key := []byte(fmt.Sprintf("key-%04d", i))
		val := bytes.Repeat([]byte{byte(i)}, 1+i%300)
		if err := m.Set(h, key, val); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 1000; i += 4 {
		m.Delete(h, []byte(fmt.Sprintf("key-%04d", i)))
	}
	rt.Drain()
	rt2, err := rt.SimulateCrash()
	if err != nil {
		t.Fatal(err)
	}
	h2 := rt2.Handle(0)
	m2, err := rt2.Map(h2, "kv", 128)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		key := []byte(fmt.Sprintf("key-%04d", i))
		v, ok := m2.Get(h2, key)
		want := i%4 != 0
		if ok != want {
			t.Fatalf("key %d after recovery: present=%v want %v", i, ok, want)
		}
		if ok && !bytes.Equal(v, bytes.Repeat([]byte{byte(i)}, 1+i%300)) {
			t.Fatalf("key %d value corrupt after recovery (len %d)", i, len(v))
		}
	}
	if n := m2.Len(h2); n != 750 {
		t.Fatalf("recovered Len = %d, want 750", n)
	}
}

// TestHashCollisionKeysStayDistinct is the regression test for the v1
// string-key aliasing hazard: the old memcached layer clamped out-of-range
// key hashes onto a single index key, so any two keys whose hashes clamped
// together could alias. The bytes layer must keep same-index-key entries
// distinct — full-key verification plus a durable collision chain — and the
// chain must survive a crash. The hash override forces every key onto ONE
// index key, the worst case.
func TestHashCollisionKeysStayDistinct(t *testing.T) {
	SetHashForTesting(func([]byte) uint64 { return MinKey })
	defer SetHashForTesting(nil)

	rt := newRT(t, WithLinkCache(true))
	h := rt.Handle(0)
	m, err := rt.Map(h, "collide", 64)
	if err != nil {
		t.Fatal(err)
	}
	const n = 40
	for i := 0; i < n; i++ {
		if err := m.Set(h, []byte(fmt.Sprintf("alias-%d", i)), []byte(fmt.Sprintf("val-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// All keys collide on one index key yet stay individually addressable.
	for i := 0; i < n; i++ {
		v, ok := m.Get(h, []byte(fmt.Sprintf("alias-%d", i)))
		if !ok || string(v) != fmt.Sprintf("val-%d", i) {
			t.Fatalf("colliding key %d aliased: %q,%v", i, v, ok)
		}
	}
	// Overwrites and deletes stay per-key, head, mid-chain and tail alike.
	if err := m.Set(h, []byte("alias-0"), []byte("rewritten-0")); err != nil {
		t.Fatal(err)
	}
	if err := m.Set(h, []byte(fmt.Sprintf("alias-%d", n/2)), []byte("rewritten-mid")); err != nil {
		t.Fatal(err)
	}
	if !m.Delete(h, []byte("alias-1")) {
		t.Fatal("delete of colliding key failed")
	}
	rt.Drain()
	rt2, err := rt.SimulateCrash()
	if err != nil {
		t.Fatal(err)
	}
	h2 := rt2.Handle(0)
	m2, err := rt2.Map(h2, "collide", 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		key := []byte(fmt.Sprintf("alias-%d", i))
		want := fmt.Sprintf("val-%d", i)
		switch i {
		case 0:
			want = "rewritten-0"
		case n / 2:
			want = "rewritten-mid"
		case 1:
			if m2.Contains(h2, key) {
				t.Fatal("deleted colliding key resurrected after crash")
			}
			continue
		}
		v, ok := m2.Get(h2, key)
		if !ok || string(v) != want {
			t.Fatalf("colliding key %d after crash: %q,%v want %q", i, v, ok, want)
		}
	}
	if n2 := m2.Len(h2); n2 != n-1 {
		t.Fatalf("recovered Len = %d, want %d", n2, n-1)
	}
}

func TestOpenOrCreateU64Kinds(t *testing.T) {
	rt := newRT(t)
	h := rt.Handle(0)
	for _, kind := range []Kind{KindList, KindHashTable, KindSkipList, KindBST} {
		name := "u64-" + kind.String()
		m, err := rt.OpenOrCreate(h, name, Spec{Kind: kind, Buckets: 64})
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if m.Kind() != kind || m.Name() != name {
			t.Fatalf("%v: Kind/Name = %v/%q", kind, m.Kind(), m.Name())
		}
		key := []byte{0, 0, 0, 0, 0, 0, 0, 42}
		val := []byte("12345678")
		if err := m.Set(h, key, val); err != nil {
			t.Fatalf("%v: Set: %v", kind, err)
		}
		if v, ok := m.Get(h, key); !ok || !bytes.Equal(v, val) {
			t.Fatalf("%v: Get = %q,%v", kind, v, ok)
		}
		// Upsert semantics.
		if err := m.Set(h, key, []byte("abcdefgh")); err != nil {
			t.Fatal(err)
		}
		if v, _ := m.Get(h, key); string(v) != "abcdefgh" {
			t.Fatalf("%v: overwrite lost: %q", kind, v)
		}
		if m.Len(h) != 1 {
			t.Fatalf("%v: Len = %d", kind, m.Len(h))
		}
		m.Range(h, func(k, v []byte) bool {
			if !bytes.Equal(k, key) {
				t.Fatalf("%v: Range key = %v", kind, k)
			}
			return true
		})
		if !m.Delete(h, key) {
			t.Fatalf("%v: Delete failed", kind)
		}
		// Validation errors: keys are a fixed 8 bytes (variable widths would
		// alias, e.g. {0,42} and {42}), values exactly 8 bytes.
		if err := m.Set(h, nil, val); !errors.Is(err, ErrKeyRange) {
			t.Fatalf("%v: empty key: %v", kind, err)
		}
		if err := m.Set(h, []byte{42}, val); !errors.Is(err, ErrKeyRange) {
			t.Fatalf("%v: short key: %v", kind, err)
		}
		if err := m.Set(h, []byte("ninebytes"), val); !errors.Is(err, ErrKeyRange) {
			t.Fatalf("%v: long key: %v", kind, err)
		}
		if err := m.Set(h, key, []byte("short")); !errors.Is(err, ErrValueSize) {
			t.Fatalf("%v: short value: %v", kind, err)
		}
	}
}

func TestOpenOrCreateDefaultsToMap(t *testing.T) {
	rt := newRT(t)
	h := rt.Handle(0)
	m, err := rt.OpenOrCreate(h, "d", Spec{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind() != KindMap {
		t.Fatalf("default kind = %v", m.Kind())
	}
	if _, ok := m.(*ByteMap); !ok {
		t.Fatalf("default map is %T", m)
	}
}

func TestOpenOrCreateUnkeyedKinds(t *testing.T) {
	rt := newRT(t)
	h := rt.Handle(0)
	if _, err := rt.OpenOrCreate(h, "q", Spec{Kind: KindQueue}); !errors.Is(err, ErrNotKeyed) {
		t.Fatalf("queue OpenOrCreate: %v", err)
	}
	if _, err := rt.OpenOrCreate(h, "s", Spec{Kind: KindStack}); !errors.Is(err, ErrNotKeyed) {
		t.Fatalf("stack OpenOrCreate: %v", err)
	}
}
