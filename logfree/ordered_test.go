package logfree_test

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"testing"

	"repro/logfree"
)

func u64key(k uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], k)
	return b[:]
}

func TestOrderedMapPublicSurface(t *testing.T) {
	rt, err := logfree.New(logfree.WithSize(32 << 20))
	if err != nil {
		t.Fatal(err)
	}
	m, err := rt.OpenOrCreate("scores", logfree.Spec{Kind: logfree.KindOrderedMap})
	if err != nil {
		t.Fatal(err)
	}
	om, ok := m.(logfree.OrderedMap)
	if !ok {
		t.Fatal("KindOrderedMap Map does not satisfy OrderedMap")
	}
	if m.Kind() != logfree.KindOrderedMap || m.Name() != "scores" {
		t.Fatalf("Kind/Name = %v/%q", m.Kind(), m.Name())
	}
	for _, k := range []string{"delta", "alpha", "charlie", "bravo", "echo"} {
		if err := om.Set([]byte(k), []byte("v-"+k)); err != nil {
			t.Fatal(err)
		}
	}
	want := []string{"alpha", "bravo", "charlie", "delta", "echo"}
	var got []string
	for k, v := range om.Ascend() {
		if string(v) != "v-"+string(k) {
			t.Fatalf("value mismatch: %q -> %q", k, v)
		}
		got = append(got, string(k))
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("Ascend = %v", got)
	}
	got = nil
	for k := range om.Scan([]byte("b"), []byte("d")) {
		got = append(got, string(k))
	}
	if fmt.Sprint(got) != fmt.Sprint([]string{"bravo", "charlie"}) {
		t.Fatalf("Scan[b,d) = %v", got)
	}
	if k, _, ok := om.Min(); !ok || string(k) != "alpha" {
		t.Fatalf("Min = %q,%v", k, ok)
	}
	if k, _, ok := om.Max(); !ok || string(k) != "echo" {
		t.Fatalf("Max = %q,%v", k, ok)
	}
	got = nil
	for k := range om.Descend() {
		got = append(got, string(k))
	}
	if fmt.Sprint(got) != fmt.Sprint([]string{"echo", "delta", "charlie", "bravo", "alpha"}) {
		t.Fatalf("Descend = %v", got)
	}

	// Opening the same name under a different kind fails.
	if _, err := rt.OpenOrCreate("scores", logfree.Spec{Kind: logfree.KindMap}); !errors.Is(err, logfree.ErrKindMismatch) {
		t.Fatalf("kind mismatch not detected: %v", err)
	}
}

func TestOrderedMapCrashRecovery(t *testing.T) {
	rt, err := logfree.New(logfree.WithSize(32<<20), logfree.WithLinkCache(true), logfree.WithMaxThreads(2))
	if err != nil {
		t.Fatal(err)
	}
	om, err := rt.OrderedMap("sessions")
	if err != nil {
		t.Fatal(err)
	}
	// A sibling hash map shares the store: the combined sweep must keep
	// both structures' objects apart.
	bm, err := rt.Map("blobs", 64)
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("s-%03d", i))
		if err := om.Set(k, []byte(fmt.Sprintf("ov-%d", i))); err != nil {
			t.Fatal(err)
		}
		if err := bm.Set(k, []byte(fmt.Sprintf("bv-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	om.Delete([]byte("s-010"))
	rt.Drain() // make deferred link-cache work durable before pulling the plug

	rt2, err := rt.SimulateCrash()
	if err != nil {
		t.Fatal(err)
	}
	om2, err := rt2.OrderedMap("sessions")
	if err != nil {
		t.Fatal(err)
	}
	bm2, err := rt2.Map("blobs", 64)
	if err != nil {
		t.Fatal(err)
	}
	var prev []byte
	count := 0
	for k := range om2.Ascend() {
		if prev != nil && bytes.Compare(prev, k) >= 0 {
			t.Fatalf("post-crash scan out of order: %q then %q", prev, k)
		}
		prev = append(prev[:0], k...)
		count++
	}
	if count != n-1 {
		t.Fatalf("ordered keys after crash = %d, want %d", count, n-1)
	}
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("s-%03d", i))
		if v, ok := bm2.Get(k); !ok || string(v) != fmt.Sprintf("bv-%d", i) {
			t.Fatalf("sibling hash map damaged at %q: %q,%v", k, v, ok)
		}
		v, ok := om2.Get(k)
		if i == 10 {
			if ok {
				t.Fatal("deleted ordered key resurrected")
			}
			continue
		}
		if !ok || string(v) != fmt.Sprintf("ov-%d", i) {
			t.Fatalf("ordered key %q after crash: %q,%v", k, v, ok)
		}
	}
}

// TestU64ViewsIterateInKeyOrder pins the ordered-iteration guarantee of the
// uint64-plane veneers: list, skip list and BST maps iterate in ascending
// byte (= numeric) key order and satisfy OrderedMap; the hash table does
// not claim ordering.
func TestU64ViewsIterateInKeyOrder(t *testing.T) {
	rt, err := logfree.New(logfree.WithSize(32 << 20))
	if err != nil {
		t.Fatal(err)
	}
	keys := []uint64{500, 2, 77, 10_000, 42, 1, 900}
	for _, kind := range []logfree.Kind{logfree.KindList, logfree.KindSkipList, logfree.KindBST} {
		m, err := rt.OpenOrCreate("u64-"+kind.String(), logfree.Spec{Kind: kind})
		if err != nil {
			t.Fatal(err)
		}
		om, ok := m.(logfree.OrderedMap)
		if !ok {
			t.Fatalf("%v view does not satisfy OrderedMap", kind)
		}
		for _, k := range keys {
			if err := m.Set(u64key(k), u64key(k*3)); err != nil {
				t.Fatal(err)
			}
		}
		var got []uint64
		for k := range m.All() {
			got = append(got, binary.BigEndian.Uint64(k))
		}
		want := []uint64{1, 2, 42, 77, 500, 900, 10_000}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("%v All order = %v, want %v", kind, got, want)
		}
		got = nil
		for k, v := range om.Scan(u64key(42), u64key(900)) {
			kk := binary.BigEndian.Uint64(k)
			if binary.BigEndian.Uint64(v) != kk*3 {
				t.Fatalf("%v Scan value mismatch at %d", kind, kk)
			}
			got = append(got, kk)
		}
		if fmt.Sprint(got) != fmt.Sprint([]uint64{42, 77, 500}) {
			t.Fatalf("%v Scan[42,900) = %v", kind, got)
		}
		// Arbitrary-length bounds compare lexicographically against the
		// 8-byte big-endian keys: a 1-byte \x00 prefix bound includes all.
		count := 0
		for range om.Scan([]byte{0}, nil) {
			count++
		}
		if count != len(keys) {
			t.Fatalf("%v Scan with short start bound = %d keys", kind, count)
		}
		if k, _, ok := om.Min(); !ok || binary.BigEndian.Uint64(k) != 1 {
			t.Fatalf("%v Min = %v,%v", kind, k, ok)
		}
		if k, _, ok := om.Max(); !ok || binary.BigEndian.Uint64(k) != 10_000 {
			t.Fatalf("%v Max = %v,%v", kind, k, ok)
		}
	}
	ht, err := rt.OpenOrCreate("u64-hash", logfree.Spec{Kind: logfree.KindHashTable})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ht.(logfree.OrderedMap); ok {
		t.Fatal("hash-table view must not satisfy OrderedMap")
	}
}

// TestSkipListSeekVeneer exercises the typed uint64 skip-list iteration
// plumbing exposed on the public surface.
func TestSkipListSeekVeneer(t *testing.T) {
	rt, err := logfree.New()
	if err != nil {
		t.Fatal(err)
	}
	sl, err := rt.SkipList("sl")
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []uint64{5, 10, 15} {
		sl.Insert(k, k+1)
	}
	if k, v, ok := sl.SeekGE(7); !ok || k != 10 || v != 11 {
		t.Fatalf("SeekGE = %d,%d,%v", k, v, ok)
	}
	if k, _, ok := sl.Succ(10); !ok || k != 15 {
		t.Fatalf("Succ = %d,%v", k, ok)
	}
	var got []uint64
	for k := range sl.Scan(5, 15) {
		got = append(got, k)
	}
	if fmt.Sprint(got) != fmt.Sprint([]uint64{5, 10}) {
		t.Fatalf("Scan = %v", got)
	}
}
