package logfree

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"iter"

	"repro/internal/core"
)

// Spec describes the structure OpenOrCreate should open or create.
type Spec struct {
	// Kind selects the structure; the zero value means KindMap, the
	// byte-keyed durable hash map. KindOrderedMap selects the ordered
	// byte-keyed map (range scans, Min/Max).
	Kind Kind
	// Buckets sizes hash-backed kinds (KindMap, KindHashTable; rounded up
	// to a power of two, default 1024). Ignored when opening an existing
	// structure, whose durable bucket count wins, and by ordered kinds.
	Buckets int
}

// Item is the per-entry payload surfaced by the Items and ScanItems
// iterators: the value bytes plus the entry's 16-bit metadata field and
// 64-bit aux word (cache-style metadata: flags, expiry, versions).
type Item struct {
	Value []byte
	Meta  uint16
	Aux   uint64
}

// Map is the unified byte-key interface of every keyed durable structure.
// All methods are safe for concurrent use from any goroutine (implicit
// sessions).
//
// KindMap (the default) stores arbitrary []byte keys and values: the key's
// hash indexes a log-free durable hash table, the full key is verified in
// the durable entry, and same-hash keys chain durably — distinct keys can
// never alias.
//
// The uint64-plane kinds (KindList, KindHashTable, KindSkipList, KindBST)
// expose the same interface over their 8-byte key/value words: keys and
// values are exactly 8 big-endian bytes, with the key decoding into
// [MinKey, MaxKey] (a fixed width, so distinct byte keys can never alias).
// The typed wrappers (Runtime.List, …) give the raw uint64 surface.
type Map interface {
	// Set binds key to value (upsert), durably.
	Set(key, value []byte) error
	// Get returns a copy of the value bound to key.
	Get(key []byte) ([]byte, bool)
	// Delete removes key durably; false if absent.
	Delete(key []byte) bool
	// Contains reports whether key is present.
	Contains(key []byte) bool
	// Len counts live keys (quiescent use).
	Len() int
	// All iterates over live entries (range-over-func). For ordered kinds
	// (KindOrderedMap, KindList, KindSkipList, KindBST) iteration is in
	// strictly ascending byte-key order; for hash-backed kinds (KindMap,
	// KindHashTable) the order is unspecified. The reclamation epoch
	// section is held across the whole loop: iteration is safe for
	// concurrent use for the byte-map kinds (no snapshot semantics —
	// concurrent updates may be missed); treat as quiescent-use for the
	// uint64-plane kinds. Loop bodies may call operations (they draw their
	// own sessions) but must not operate through the same pinned Session.
	All() iter.Seq2[[]byte, []byte]
	// Batch starts an operation batch against this map; see Batch.
	Batch() *Batch
	// Kind reports the structure kind backing the map.
	Kind() Kind
	// Name reports the directory name the map is registered under.
	Name() string
}

// OrderedMap extends Map with ordered queries. Every Map returned by
// OpenOrCreate for an ordered kind (KindOrderedMap, KindList,
// KindSkipList, KindBST) satisfies it:
//
//	m, _ := rt.OpenOrCreate("scores", logfree.Spec{Kind: logfree.KindOrderedMap})
//	om := m.(logfree.OrderedMap)
//	for k, v := range om.Scan([]byte("a"), []byte("b")) { ... }
//
// Keys order by bytes.Compare over the complete key; same-hash or
// shared-prefix keys can never alias or reorder.
type OrderedMap interface {
	Map
	// Scan iterates every live key k with start <= k < end in strictly
	// ascending byte order. A nil (or empty) start scans from the smallest
	// key; a nil end scans through the largest. Scans are safe for
	// concurrent use but are not snapshots; see Map.All for the loop-body
	// contract.
	Scan(start, end []byte) iter.Seq2[[]byte, []byte]
	// Ascend iterates every live key in ascending byte order.
	Ascend() iter.Seq2[[]byte, []byte]
	// Descend iterates every live key in descending byte order
	// (materializes the ascending pass first; prefer Scan on very large
	// maps).
	Descend() iter.Seq2[[]byte, []byte]
	// Min returns the smallest live key and its value.
	Min() (key, value []byte, ok bool)
	// Max returns the largest live key and its value.
	Max() (key, value []byte, ok bool)
}

// OpenOrCreate is the generic entry point of the API: it opens the
// structure registered under name, or creates and registers it, and returns
// the unified byte-key Map view. Opening an existing name under a different
// kind fails with ErrKindMismatch; queue and stack kinds have no map
// abstraction (ErrNotKeyed) — use Runtime.Queue and Runtime.Stack.
func (r *Runtime) OpenOrCreate(name string, spec Spec) (Map, error) {
	if spec.Kind == 0 {
		spec.Kind = KindMap
	}
	if spec.Buckets <= 0 {
		spec.Buckets = 1024
	}
	switch spec.Kind {
	case KindMap:
		return r.Map(name, spec.Buckets)
	case KindOrderedMap:
		return r.OrderedMap(name)
	case KindHashTable:
		t, err := r.HashTable(name, spec.Buckets)
		if err != nil {
			return nil, err
		}
		return &u64View{binding: t.binding, m: t.t, kind: KindHashTable, name: name}, nil
	case KindList:
		l, err := r.List(name)
		if err != nil {
			return nil, err
		}
		return &u64OrderedView{u64View{binding: l.binding, m: l.l, kind: KindList, name: name}}, nil
	case KindSkipList:
		s, err := r.SkipList(name)
		if err != nil {
			return nil, err
		}
		return &u64OrderedView{u64View{binding: s.binding, m: s.s, kind: KindSkipList, name: name}}, nil
	case KindBST:
		t, err := r.BST(name)
		if err != nil {
			return nil, err
		}
		return &u64OrderedView{u64View{binding: t.binding, m: t.t, kind: KindBST, name: name}}, nil
	case KindQueue, KindStack:
		return nil, fmt.Errorf("%w: %v", ErrNotKeyed, spec.Kind)
	}
	return nil, fmt.Errorf("logfree: unknown kind %d", spec.Kind)
}

// SetHashForTesting overrides the byte-key index-hash derivation (nil
// restores the default). Tests inject colliding hashes to exercise the
// durable collision chains deterministically; the override must stay in
// place across any crash/recover cycle of the test, since entries persist
// the index key they were stored under.
func SetHashForTesting(f func([]byte) uint64) { core.SetBytesHashForTesting(f) }

// --- ByteMap -------------------------------------------------------------

// ByteMap is the byte-keyed durable hash map (KindMap): arbitrary []byte
// keys and values with durable collision chains, plus a 16-bit metadata
// field and a 64-bit aux word per entry for cache-style metadata (flags,
// expiry). All methods are safe for concurrent use from any goroutine.
type ByteMap struct {
	binding
	b    *core.BytesMap
	name string
}

// Map opens or creates the byte-keyed durable map registered under name
// (the typed veneer of OpenOrCreate with KindMap).
func (r *Runtime) Map(name string, buckets int) (*ByteMap, error) {
	if buckets <= 0 {
		buckets = 1024
	}
	c, s, err := binding{rt: r}.beginErr()
	if err != nil {
		return nil, err
	}
	defer r.release(s)
	var created *core.BytesMap
	aux, a1, a2, err := r.ensure(c, name, KindMap, func() (uint64, uint64, uint64, error) {
		b, err := core.NewBytesMap(c, buckets)
		if err != nil {
			return 0, 0, 0, err
		}
		created = b
		return uint64(b.NumBuckets()), b.Buckets(), b.Tail(), nil
	})
	if err != nil {
		return nil, wrapErr(err)
	}
	if created == nil {
		created = core.AttachBytesMap(r.store, a1, int(aux), a2)
	}
	return &ByteMap{binding: binding{rt: r}, b: created, name: name}, nil
}

// WithSession returns a view of the map whose operations all run on the
// pinned session s instead of drawing pooled sessions — for tight
// single-goroutine loops. The view must only be used by the goroutine
// owning s.
func (m *ByteMap) WithSession(s *Session) *ByteMap {
	cp := *m
	cp.pin = s
	return &cp
}

// Set implements Map (meta 0, aux 0).
func (m *ByteMap) Set(key, value []byte) error {
	c, s, err := m.beginErr()
	if err != nil {
		return err
	}
	defer m.end(s)
	_, err = m.b.Set(c, key, value, 0, 0)
	return wrapErr(err)
}

// SetItem binds key to value with a metadata field and aux word; reports
// whether the key was newly created.
func (m *ByteMap) SetItem(key, value []byte, meta uint16, aux uint64) (created bool, err error) {
	c, s, err := m.beginErr()
	if err != nil {
		return false, err
	}
	defer m.end(s)
	created, err = m.b.Set(c, key, value, meta, aux)
	return created, wrapErr(err)
}

// Get implements Map.
func (m *ByteMap) Get(key []byte) ([]byte, bool) {
	c, s := m.begin()
	defer m.end(s)
	return m.b.Get(c, key)
}

// GetItem returns the value with its metadata field and aux word.
func (m *ByteMap) GetItem(key []byte) (value []byte, meta uint16, aux uint64, ok bool) {
	c, s := m.begin()
	defer m.end(s)
	return m.b.GetItem(c, key)
}

// GetAux returns only the aux word bound to key (no value copy).
func (m *ByteMap) GetAux(key []byte) (aux uint64, ok bool) {
	c, s := m.begin()
	defer m.end(s)
	return m.b.GetAux(c, key)
}

// SetAux durably replaces the aux word of an existing entry in place
// (touch-style update); false if key is absent.
func (m *ByteMap) SetAux(key []byte, aux uint64) bool {
	c, s := m.begin()
	defer m.end(s)
	return m.b.SetAux(c, key, aux)
}

// Delete implements Map.
func (m *ByteMap) Delete(key []byte) bool {
	c, s := m.begin()
	defer m.end(s)
	return m.b.Delete(c, key)
}

// Contains implements Map.
func (m *ByteMap) Contains(key []byte) bool {
	c, s := m.begin()
	defer m.end(s)
	return m.b.Contains(c, key)
}

// Len implements Map (quiescent use).
func (m *ByteMap) Len() int {
	c, s := m.begin()
	defer m.end(s)
	return m.b.Len(c)
}

// All implements Map: unordered iteration, epoch-protected across the whole
// loop (safe-concurrent, no snapshot semantics).
func (m *ByteMap) All() iter.Seq2[[]byte, []byte] {
	return func(yield func([]byte, []byte) bool) {
		c, s := m.begin()
		defer m.end(s)
		m.b.Range(c, yield)
	}
}

// Items is All including each entry's metadata and aux word.
func (m *ByteMap) Items() iter.Seq2[[]byte, Item] {
	return func(yield func([]byte, Item) bool) {
		c, s := m.begin()
		defer m.end(s)
		m.b.RangeItems(c, func(k, v []byte, meta uint16, aux uint64) bool {
			return yield(k, Item{Value: v, Meta: meta, Aux: aux})
		})
	}
}

// Batch implements Map: Commit applies the collected ops with one shared
// content fence before the per-op publishing links (~N+1 sync waits for N
// sets instead of 2N).
func (m *ByteMap) Batch() *Batch {
	return &Batch{apply: func(ops []core.BytesOp) error {
		c, s, err := m.beginErr()
		if err != nil {
			return err
		}
		defer m.end(s)
		return wrapErr(m.b.ApplyBatch(c, ops))
	}}
}

// Kind implements Map.
func (m *ByteMap) Kind() Kind { return KindMap }

// Name implements Map.
func (m *ByteMap) Name() string { return m.name }

// --- OrderedByteMap ------------------------------------------------------

// OrderedByteMap is the byte-keyed ordered durable map (KindOrderedMap):
// arbitrary []byte keys and values over a byte-key-comparing durable skip
// list, plus a 16-bit metadata field and a 64-bit aux word per entry. It
// satisfies OrderedMap: All and Scan iterate keys in strictly ascending
// byte order. All methods are safe for concurrent use from any goroutine.
type OrderedByteMap struct {
	binding
	o    *core.OrderedBytesMap
	name string
}

// OrderedMap opens or creates the ordered byte-keyed durable map
// registered under name (the typed veneer of OpenOrCreate with
// KindOrderedMap).
func (r *Runtime) OrderedMap(name string) (*OrderedByteMap, error) {
	c, s, err := binding{rt: r}.beginErr()
	if err != nil {
		return nil, err
	}
	defer r.release(s)
	var created *core.OrderedBytesMap
	_, a1, a2, err := r.ensure(c, name, KindOrderedMap, func() (uint64, uint64, uint64, error) {
		o, err := core.NewOrderedBytesMap(c)
		if err != nil {
			return 0, 0, 0, err
		}
		created = o
		return 0, o.Head(), o.Tail(), nil
	})
	if err != nil {
		return nil, wrapErr(err)
	}
	if created == nil {
		created = core.AttachOrderedBytesMap(r.store, a1, a2)
	}
	return &OrderedByteMap{binding: binding{rt: r}, o: created, name: name}, nil
}

// WithSession returns a view of the map whose operations all run on the
// pinned session s; see ByteMap.WithSession.
func (m *OrderedByteMap) WithSession(s *Session) *OrderedByteMap {
	cp := *m
	cp.pin = s
	return &cp
}

// Set implements Map (meta 0, aux 0).
func (m *OrderedByteMap) Set(key, value []byte) error {
	c, s, err := m.beginErr()
	if err != nil {
		return err
	}
	defer m.end(s)
	_, err = m.o.Set(c, key, value, 0, 0)
	return wrapErr(err)
}

// SetItem binds key to value with a metadata field and aux word; reports
// whether the key was newly created.
func (m *OrderedByteMap) SetItem(key, value []byte, meta uint16, aux uint64) (created bool, err error) {
	c, s, err := m.beginErr()
	if err != nil {
		return false, err
	}
	defer m.end(s)
	created, err = m.o.Set(c, key, value, meta, aux)
	return created, wrapErr(err)
}

// Get implements Map.
func (m *OrderedByteMap) Get(key []byte) ([]byte, bool) {
	c, s := m.begin()
	defer m.end(s)
	return m.o.Get(c, key)
}

// GetItem returns the value with its metadata field and aux word.
func (m *OrderedByteMap) GetItem(key []byte) (value []byte, meta uint16, aux uint64, ok bool) {
	c, s := m.begin()
	defer m.end(s)
	return m.o.GetItem(c, key)
}

// SetAux durably replaces the aux word of an existing entry in place
// (touch-style update); false if key is absent.
func (m *OrderedByteMap) SetAux(key []byte, aux uint64) bool {
	c, s := m.begin()
	defer m.end(s)
	return m.o.SetAux(c, key, aux)
}

// Delete implements Map.
func (m *OrderedByteMap) Delete(key []byte) bool {
	c, s := m.begin()
	defer m.end(s)
	return m.o.Delete(c, key)
}

// Contains implements Map.
func (m *OrderedByteMap) Contains(key []byte) bool {
	c, s := m.begin()
	defer m.end(s)
	return m.o.Contains(c, key)
}

// Len implements Map (quiescent use).
func (m *OrderedByteMap) Len() int {
	c, s := m.begin()
	defer m.end(s)
	return m.o.Len(c)
}

// All implements Map: ascending byte-key order, epoch-protected across the
// whole loop.
func (m *OrderedByteMap) All() iter.Seq2[[]byte, []byte] { return m.Scan(nil, nil) }

// Items is All including each entry's metadata and aux word.
func (m *OrderedByteMap) Items() iter.Seq2[[]byte, Item] { return m.ScanItems(nil, nil) }

// Scan implements OrderedMap: ascending over [start, end) (nil start = from
// the smallest key, nil end = through the largest).
func (m *OrderedByteMap) Scan(start, end []byte) iter.Seq2[[]byte, []byte] {
	return func(yield func([]byte, []byte) bool) {
		c, s := m.begin()
		defer m.end(s)
		m.o.Scan(c, start, end, yield)
	}
}

// ScanItems is Scan including each entry's metadata and aux word.
func (m *OrderedByteMap) ScanItems(start, end []byte) iter.Seq2[[]byte, Item] {
	return func(yield func([]byte, Item) bool) {
		c, s := m.begin()
		defer m.end(s)
		m.o.ScanItems(c, start, end, func(k, v []byte, meta uint16, aux uint64) bool {
			return yield(k, Item{Value: v, Meta: meta, Aux: aux})
		})
	}
}

// Ascend implements OrderedMap.
func (m *OrderedByteMap) Ascend() iter.Seq2[[]byte, []byte] { return m.Scan(nil, nil) }

// Descend implements OrderedMap.
func (m *OrderedByteMap) Descend() iter.Seq2[[]byte, []byte] {
	return func(yield func([]byte, []byte) bool) {
		c, s := m.begin()
		defer m.end(s)
		m.o.Descend(c, yield)
	}
}

// Min implements OrderedMap.
func (m *OrderedByteMap) Min() (key, value []byte, ok bool) {
	c, s := m.begin()
	defer m.end(s)
	return m.o.Min(c)
}

// Max implements OrderedMap.
func (m *OrderedByteMap) Max() (key, value []byte, ok bool) {
	c, s := m.begin()
	defer m.end(s)
	return m.o.Max(c)
}

// Batch implements Map; see ByteMap.Batch.
func (m *OrderedByteMap) Batch() *Batch {
	return &Batch{apply: func(ops []core.BytesOp) error {
		c, s, err := m.beginErr()
		if err != nil {
			return err
		}
		defer m.end(s)
		return wrapErr(m.o.ApplyBatch(c, ops))
	}}
}

// Kind implements Map.
func (m *OrderedByteMap) Kind() Kind { return KindOrderedMap }

// Name implements Map.
func (m *OrderedByteMap) Name() string { return m.name }

// --- uint64-plane adapter ------------------------------------------------

// u64core is the operation set the core uint64 structures share; the typed
// wrappers and the byte-key views both drive it with the session they hold.
type u64core interface {
	Insert(c *core.Ctx, key, value uint64) bool
	Upsert(c *core.Ctx, key, value uint64) bool
	Delete(c *core.Ctx, key uint64) (uint64, bool)
	Search(c *core.Ctx, key uint64) (uint64, bool)
	Contains(c *core.Ctx, key uint64) bool
	Len(c *core.Ctx) int
	Range(c *core.Ctx, fn func(key, value uint64) bool)
}

// u64coreScanner is implemented by core structures with native ordered
// iteration plumbing (the skip list's SeekGE-positioned Scan).
type u64coreScanner interface {
	Scan(c *core.Ctx, start, end uint64, fn func(key, value uint64) bool)
}

// u64View adapts a uint64 structure to the byte-key Map interface: keys and
// values are exactly 8 big-endian bytes (fixed width — variable-length keys
// with leading zeros would alias onto one uint64).
type u64View struct {
	binding
	m    u64core
	kind Kind
	name string
}

func decodeU64Key(key []byte) (uint64, error) {
	if len(key) != 8 {
		return 0, ErrKeyRange
	}
	k := binary.BigEndian.Uint64(key)
	if k < MinKey || k > MaxKey {
		return 0, ErrKeyRange
	}
	return k, nil
}

func (v *u64View) Set(key, value []byte) error {
	k, err := decodeU64Key(key)
	if err != nil {
		return err
	}
	if len(value) != 8 {
		return ErrValueSize
	}
	c, s, err := v.beginErr()
	if err != nil {
		return err
	}
	defer v.end(s)
	v.m.Upsert(c, k, binary.BigEndian.Uint64(value))
	return nil
}

func (v *u64View) Get(key []byte) ([]byte, bool) {
	k, err := decodeU64Key(key)
	if err != nil {
		return nil, false
	}
	c, s := v.begin()
	defer v.end(s)
	val, ok := v.m.Search(c, k)
	if !ok {
		return nil, false
	}
	out := make([]byte, 8)
	binary.BigEndian.PutUint64(out, val)
	return out, true
}

func (v *u64View) Delete(key []byte) bool {
	k, err := decodeU64Key(key)
	if err != nil {
		return false
	}
	c, s := v.begin()
	defer v.end(s)
	_, ok := v.m.Delete(c, k)
	return ok
}

func (v *u64View) Contains(key []byte) bool {
	_, ok := v.Get(key)
	return ok
}

func (v *u64View) Len() int {
	c, s := v.begin()
	defer v.end(s)
	return v.m.Len(c)
}

func (v *u64View) All() iter.Seq2[[]byte, []byte] {
	return func(yield func([]byte, []byte) bool) {
		c, s := v.begin()
		defer v.end(s)
		v.m.Range(c, func(k, val uint64) bool {
			kb, vb := make([]byte, 8), make([]byte, 8)
			binary.BigEndian.PutUint64(kb, k)
			binary.BigEndian.PutUint64(vb, val)
			return yield(kb, vb)
		})
	}
}

// Batch implements Map. The uint64 plane has no deferred-fence plumbing, so
// Commit simply applies the ops in order (same crash semantics — each op is
// individually durable — without the fence amortization of the byte maps).
// uint64 entries store no per-entry metadata: a buffered SetItem with a
// non-zero meta or aux fails with ErrNoItemMeta rather than dropping the
// fields silently.
func (v *u64View) Batch() *Batch {
	return &Batch{apply: func(ops []core.BytesOp) error {
		for i := range ops {
			if ops[i].Meta != 0 || ops[i].Aux != 0 {
				return fmt.Errorf("%w: %v batch op carries meta/aux", ErrNoItemMeta, v.kind)
			}
		}
		for i := range ops {
			if ops[i].Del {
				v.Delete(ops[i].Key)
				continue
			}
			if err := v.Set(ops[i].Key, ops[i].Value); err != nil {
				return err
			}
		}
		return nil
	}}
}

func (v *u64View) Kind() Kind   { return v.kind }
func (v *u64View) Name() string { return v.name }

// --- ordered uint64-plane adapter ----------------------------------------

// u64OrderedView wraps u64View over the ordered uint64 kinds (KindList,
// KindSkipList, KindBST — structures whose Range already iterates in
// ascending key order), adding the OrderedMap methods. Because keys are a
// fixed 8 big-endian bytes, bytewise order coincides with numeric order,
// and Scan bounds of any length compare lexicographically.
type u64OrderedView struct{ u64View }

func (v *u64OrderedView) Scan(start, end []byte) iter.Seq2[[]byte, []byte] {
	return func(yield func([]byte, []byte) bool) {
		c, s := v.begin()
		defer v.end(s)
		emit := func(k, val uint64) bool {
			kb, vb := make([]byte, 8), make([]byte, 8)
			binary.BigEndian.PutUint64(kb, k)
			binary.BigEndian.PutUint64(vb, val)
			return yield(kb, vb)
		}
		// Fast path: exact 8-byte (or open) bounds on a structure with
		// native seek plumbing position with the index instead of filtering.
		if sc, ok := v.m.(u64coreScanner); ok && (len(start) == 0 || len(start) == 8) && (end == nil || len(end) == 8) {
			lo := uint64(MinKey)
			if len(start) == 8 {
				if k := binary.BigEndian.Uint64(start); k > lo {
					lo = k
				}
			}
			hi := uint64(0) // 0 = through MaxKey
			if len(end) == 8 {
				hi = binary.BigEndian.Uint64(end)
				if hi == 0 {
					return // end below every storable key
				}
			}
			if lo > MaxKey {
				return
			}
			sc.Scan(c, lo, hi, emit)
			return
		}
		// Slow path (list, BST, or ragged bounds): the underlying Range
		// walks without its own epoch section, so open one here — retired
		// nodes then cannot be reclaimed mid-walk, making the OrderedMap
		// concurrency contract hold for every ordered kind.
		c.Epoch().Begin()
		defer c.Epoch().End()
		v.m.Range(c, func(k, val uint64) bool {
			var kb [8]byte
			binary.BigEndian.PutUint64(kb[:], k)
			if len(start) > 0 && bytes.Compare(kb[:], start) < 0 {
				return true
			}
			if end != nil && bytes.Compare(kb[:], end) >= 0 {
				return false // ascending: nothing after can be in range
			}
			return emit(k, val)
		})
	}
}

func (v *u64OrderedView) Ascend() iter.Seq2[[]byte, []byte] { return v.Scan(nil, nil) }

func (v *u64OrderedView) Descend() iter.Seq2[[]byte, []byte] {
	return func(yield func([]byte, []byte) bool) {
		type kv struct{ k, v []byte }
		var all []kv
		for k, val := range v.Scan(nil, nil) {
			all = append(all, kv{k, val})
		}
		for i := len(all) - 1; i >= 0; i-- {
			if !yield(all[i].k, all[i].v) {
				return
			}
		}
	}
}

func (v *u64OrderedView) Min() (key, value []byte, ok bool) {
	for k, val := range v.Scan(nil, nil) {
		return k, val, true
	}
	return nil, nil, false
}

func (v *u64OrderedView) Max() (key, value []byte, ok bool) {
	for k, val := range v.Scan(nil, nil) {
		key, value, ok = k, val, true
	}
	return key, value, ok
}
