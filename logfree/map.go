package logfree

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"repro/internal/core"
)

// Spec describes the structure OpenOrCreate should open or create.
type Spec struct {
	// Kind selects the structure; the zero value means KindMap, the
	// byte-keyed durable hash map. KindOrderedMap selects the ordered
	// byte-keyed map (range scans, Min/Max).
	Kind Kind
	// Buckets sizes hash-backed kinds (KindMap, KindHashTable; rounded up
	// to a power of two, default 1024). Ignored when opening an existing
	// structure, whose durable bucket count wins, and by ordered kinds.
	Buckets int
}

// Map is the unified byte-key interface of every keyed durable structure.
//
// KindMap (the default) stores arbitrary []byte keys and values: the key's
// hash indexes a log-free durable hash table, the full key is verified in
// the durable entry, and same-hash keys chain durably — distinct keys can
// never alias.
//
// The uint64-plane kinds (KindList, KindHashTable, KindSkipList, KindBST)
// expose the same interface over their 8-byte key/value words: keys and
// values are exactly 8 big-endian bytes, with the key decoding into
// [MinKey, MaxKey] (a fixed width, so distinct byte keys can never alias).
// The typed wrappers (Runtime.List, …) give the raw uint64 surface.
type Map interface {
	// Set binds key to value (upsert), durably.
	Set(h *Handle, key, value []byte) error
	// Get returns a copy of the value bound to key.
	Get(h *Handle, key []byte) ([]byte, bool)
	// Delete removes key durably; false if absent.
	Delete(h *Handle, key []byte) bool
	// Contains reports whether key is present.
	Contains(h *Handle, key []byte) bool
	// Len counts live keys (quiescent use).
	Len(h *Handle) int
	// Range visits live entries. For ordered kinds (KindOrderedMap,
	// KindList, KindSkipList, KindBST) iteration is in strictly ascending
	// byte-key order; for hash-backed kinds (KindMap, KindHashTable) the
	// order is unspecified. Safe for concurrent use for the byte-map kinds
	// (no snapshot semantics: concurrent updates may be missed); treat as
	// quiescent-use for the uint64-plane kinds. fn must not call
	// operations on the same Handle.
	Range(h *Handle, fn func(key, value []byte) bool)
	// Kind reports the structure kind backing the map.
	Kind() Kind
	// Name reports the directory name the map is registered under.
	Name() string
}

// OrderedMap extends Map with ordered queries. Every Map returned by
// OpenOrCreate for an ordered kind (KindOrderedMap, KindList,
// KindSkipList, KindBST) satisfies it:
//
//	m, _ := rt.OpenOrCreate(h, "scores", logfree.Spec{Kind: logfree.KindOrderedMap})
//	om := m.(logfree.OrderedMap)
//	om.Scan(h, []byte("a"), []byte("b"), func(k, v []byte) bool { ... })
//
// Keys order by bytes.Compare over the complete key; same-hash or
// shared-prefix keys can never alias or reorder.
type OrderedMap interface {
	Map
	// Scan visits every live key k with start <= k < end in strictly
	// ascending byte order. A nil (or empty) start scans from the smallest
	// key; a nil end scans through the largest. Scans are safe for
	// concurrent use but are not snapshots; fn must not call operations on
	// the same Handle.
	Scan(h *Handle, start, end []byte, fn func(key, value []byte) bool)
	// Ascend visits every live key in ascending byte order.
	Ascend(h *Handle, fn func(key, value []byte) bool)
	// Descend visits every live key in descending byte order (materializes
	// the ascending pass first; prefer Scan on very large maps).
	Descend(h *Handle, fn func(key, value []byte) bool)
	// Min returns the smallest live key and its value.
	Min(h *Handle) (key, value []byte, ok bool)
	// Max returns the largest live key and its value.
	Max(h *Handle) (key, value []byte, ok bool)
}

// OpenOrCreate is the generic entry point of the v2 API: it opens the
// structure registered under name, or creates and registers it, and returns
// the unified byte-key Map view. Opening an existing name under a different
// kind fails with ErrKind; queue and stack kinds have no map abstraction
// (ErrNotKeyed) — use Runtime.Queue and Runtime.Stack.
func (r *Runtime) OpenOrCreate(h *Handle, name string, spec Spec) (Map, error) {
	if spec.Kind == 0 {
		spec.Kind = KindMap
	}
	if spec.Buckets <= 0 {
		spec.Buckets = 1024
	}
	switch spec.Kind {
	case KindMap:
		return r.Map(h, name, spec.Buckets)
	case KindOrderedMap:
		return r.OrderedMap(h, name)
	case KindHashTable:
		t, err := r.HashTable(h, name, spec.Buckets)
		if err != nil {
			return nil, err
		}
		return &u64View{m: t, kind: KindHashTable, name: name}, nil
	case KindList:
		l, err := r.List(h, name)
		if err != nil {
			return nil, err
		}
		return &u64OrderedView{u64View{m: l, kind: KindList, name: name}}, nil
	case KindSkipList:
		s, err := r.SkipList(h, name)
		if err != nil {
			return nil, err
		}
		return &u64OrderedView{u64View{m: s, kind: KindSkipList, name: name}}, nil
	case KindBST:
		t, err := r.BST(h, name)
		if err != nil {
			return nil, err
		}
		return &u64OrderedView{u64View{m: t, kind: KindBST, name: name}}, nil
	case KindQueue, KindStack:
		return nil, fmt.Errorf("%w: %v", ErrNotKeyed, spec.Kind)
	}
	return nil, fmt.Errorf("logfree: unknown kind %d", spec.Kind)
}

// SetHashForTesting overrides the byte-key index-hash derivation (nil
// restores the default). Tests inject colliding hashes to exercise the
// durable collision chains deterministically; the override must stay in
// place across any crash/recover cycle of the test, since entries persist
// the index key they were stored under.
func SetHashForTesting(f func([]byte) uint64) { core.SetBytesHashForTesting(f) }

// --- ByteMap -------------------------------------------------------------

// ByteMap is the byte-keyed durable hash map (KindMap): arbitrary []byte
// keys and values with durable collision chains, plus a 16-bit metadata
// field and a 64-bit aux word per entry for cache-style metadata (flags,
// expiry). All methods are safe for concurrent use provided each goroutine
// uses its own Handle.
type ByteMap struct {
	b    *core.BytesMap
	name string
}

// Map opens or creates the byte-keyed durable map registered under name
// (the typed veneer of OpenOrCreate with KindMap).
func (r *Runtime) Map(h *Handle, name string, buckets int) (*ByteMap, error) {
	if buckets <= 0 {
		buckets = 1024
	}
	var created *core.BytesMap
	aux, a1, a2, err := r.ensure(h, name, KindMap, func() (uint64, uint64, uint64, error) {
		b, err := core.NewBytesMap(h.c, buckets)
		if err != nil {
			return 0, 0, 0, err
		}
		created = b
		return uint64(b.NumBuckets()), b.Buckets(), b.Tail(), nil
	})
	if err != nil {
		return nil, err
	}
	if created != nil {
		return &ByteMap{b: created, name: name}, nil
	}
	return &ByteMap{b: core.AttachBytesMap(r.store, a1, int(aux), a2), name: name}, nil
}

// Set implements Map (meta 0, aux 0).
func (m *ByteMap) Set(h *Handle, key, value []byte) error {
	_, err := m.b.Set(h.c, key, value, 0, 0)
	return err
}

// SetItem binds key to value with a metadata field and aux word; reports
// whether the key was newly created.
func (m *ByteMap) SetItem(h *Handle, key, value []byte, meta uint16, aux uint64) (created bool, err error) {
	return m.b.Set(h.c, key, value, meta, aux)
}

// Get implements Map.
func (m *ByteMap) Get(h *Handle, key []byte) ([]byte, bool) {
	return m.b.Get(h.c, key)
}

// GetItem returns the value with its metadata field and aux word.
func (m *ByteMap) GetItem(h *Handle, key []byte) (value []byte, meta uint16, aux uint64, ok bool) {
	return m.b.GetItem(h.c, key)
}

// GetAux returns only the aux word bound to key (no value copy).
func (m *ByteMap) GetAux(h *Handle, key []byte) (aux uint64, ok bool) {
	return m.b.GetAux(h.c, key)
}

// SetAux durably replaces the aux word of an existing entry in place
// (touch-style update); false if key is absent.
func (m *ByteMap) SetAux(h *Handle, key []byte, aux uint64) bool {
	return m.b.SetAux(h.c, key, aux)
}

// Delete implements Map.
func (m *ByteMap) Delete(h *Handle, key []byte) bool { return m.b.Delete(h.c, key) }

// Contains implements Map.
func (m *ByteMap) Contains(h *Handle, key []byte) bool { return m.b.Contains(h.c, key) }

// Len implements Map (quiescent use).
func (m *ByteMap) Len(h *Handle) int { return m.b.Len(h.c) }

// Range implements Map (unordered; quiescent use).
func (m *ByteMap) Range(h *Handle, fn func(key, value []byte) bool) {
	m.b.Range(h.c, fn)
}

// RangeItems is Range including each entry's metadata and aux word.
func (m *ByteMap) RangeItems(h *Handle, fn func(key, value []byte, meta uint16, aux uint64) bool) {
	m.b.RangeItems(h.c, fn)
}

// Kind implements Map.
func (m *ByteMap) Kind() Kind { return KindMap }

// Name implements Map.
func (m *ByteMap) Name() string { return m.name }

// --- OrderedByteMap ------------------------------------------------------

// OrderedByteMap is the byte-keyed ordered durable map (KindOrderedMap):
// arbitrary []byte keys and values over a byte-key-comparing durable skip
// list, plus a 16-bit metadata field and a 64-bit aux word per entry. It
// satisfies OrderedMap: Range and Scan visit keys in strictly ascending
// byte order. All methods are safe for concurrent use provided each
// goroutine uses its own Handle.
type OrderedByteMap struct {
	o    *core.OrderedBytesMap
	name string
}

// OrderedMap opens or creates the ordered byte-keyed durable map
// registered under name (the typed veneer of OpenOrCreate with
// KindOrderedMap).
func (r *Runtime) OrderedMap(h *Handle, name string) (*OrderedByteMap, error) {
	var created *core.OrderedBytesMap
	_, a1, a2, err := r.ensure(h, name, KindOrderedMap, func() (uint64, uint64, uint64, error) {
		o, err := core.NewOrderedBytesMap(h.c)
		if err != nil {
			return 0, 0, 0, err
		}
		created = o
		return 0, o.Head(), o.Tail(), nil
	})
	if err != nil {
		return nil, err
	}
	if created != nil {
		return &OrderedByteMap{o: created, name: name}, nil
	}
	return &OrderedByteMap{o: core.AttachOrderedBytesMap(r.store, a1, a2), name: name}, nil
}

// Set implements Map (meta 0, aux 0).
func (m *OrderedByteMap) Set(h *Handle, key, value []byte) error {
	_, err := m.o.Set(h.c, key, value, 0, 0)
	return err
}

// SetItem binds key to value with a metadata field and aux word; reports
// whether the key was newly created.
func (m *OrderedByteMap) SetItem(h *Handle, key, value []byte, meta uint16, aux uint64) (created bool, err error) {
	return m.o.Set(h.c, key, value, meta, aux)
}

// Get implements Map.
func (m *OrderedByteMap) Get(h *Handle, key []byte) ([]byte, bool) {
	return m.o.Get(h.c, key)
}

// GetItem returns the value with its metadata field and aux word.
func (m *OrderedByteMap) GetItem(h *Handle, key []byte) (value []byte, meta uint16, aux uint64, ok bool) {
	return m.o.GetItem(h.c, key)
}

// SetAux durably replaces the aux word of an existing entry in place
// (touch-style update); false if key is absent.
func (m *OrderedByteMap) SetAux(h *Handle, key []byte, aux uint64) bool {
	return m.o.SetAux(h.c, key, aux)
}

// Delete implements Map.
func (m *OrderedByteMap) Delete(h *Handle, key []byte) bool { return m.o.Delete(h.c, key) }

// Contains implements Map.
func (m *OrderedByteMap) Contains(h *Handle, key []byte) bool { return m.o.Contains(h.c, key) }

// Len implements Map (quiescent use).
func (m *OrderedByteMap) Len(h *Handle) int { return m.o.Len(h.c) }

// Range implements Map: ascending byte-key order.
func (m *OrderedByteMap) Range(h *Handle, fn func(key, value []byte) bool) {
	m.o.Ascend(h.c, fn)
}

// RangeItems is Range including each entry's metadata and aux word.
func (m *OrderedByteMap) RangeItems(h *Handle, fn func(key, value []byte, meta uint16, aux uint64) bool) {
	m.o.ScanItems(h.c, nil, nil, fn)
}

// Scan implements OrderedMap: ascending over [start, end) (nil start = from
// the smallest key, nil end = through the largest).
func (m *OrderedByteMap) Scan(h *Handle, start, end []byte, fn func(key, value []byte) bool) {
	m.o.Scan(h.c, start, end, fn)
}

// ScanItems is Scan including each entry's metadata and aux word.
func (m *OrderedByteMap) ScanItems(h *Handle, start, end []byte, fn func(key, value []byte, meta uint16, aux uint64) bool) {
	m.o.ScanItems(h.c, start, end, fn)
}

// Ascend implements OrderedMap.
func (m *OrderedByteMap) Ascend(h *Handle, fn func(key, value []byte) bool) {
	m.o.Ascend(h.c, fn)
}

// Descend implements OrderedMap.
func (m *OrderedByteMap) Descend(h *Handle, fn func(key, value []byte) bool) {
	m.o.Descend(h.c, fn)
}

// Min implements OrderedMap.
func (m *OrderedByteMap) Min(h *Handle) (key, value []byte, ok bool) { return m.o.Min(h.c) }

// Max implements OrderedMap.
func (m *OrderedByteMap) Max(h *Handle) (key, value []byte, ok bool) { return m.o.Max(h.c) }

// Kind implements Map.
func (m *OrderedByteMap) Kind() Kind { return KindOrderedMap }

// Name implements Map.
func (m *OrderedByteMap) Name() string { return m.name }

// --- uint64-plane adapter ------------------------------------------------

// u64ops is the operation set the typed wrappers share (see structures.go).
type u64ops interface {
	Insert(h *Handle, key, value uint64) bool
	Upsert(h *Handle, key, value uint64) bool
	Delete(h *Handle, key uint64) (uint64, bool)
	Search(h *Handle, key uint64) (uint64, bool)
	Contains(h *Handle, key uint64) bool
	Len(h *Handle) int
	Range(h *Handle, fn func(key, value uint64) bool)
}

// u64View adapts a uint64 structure to the byte-key Map interface: keys and
// values are exactly 8 big-endian bytes (fixed width — variable-length keys
// with leading zeros would alias onto one uint64).
type u64View struct {
	m    u64ops
	kind Kind
	name string
}

func decodeU64Key(key []byte) (uint64, error) {
	if len(key) != 8 {
		return 0, ErrKeyRange
	}
	k := binary.BigEndian.Uint64(key)
	if k < MinKey || k > MaxKey {
		return 0, ErrKeyRange
	}
	return k, nil
}

func (v *u64View) Set(h *Handle, key, value []byte) error {
	k, err := decodeU64Key(key)
	if err != nil {
		return err
	}
	if len(value) != 8 {
		return ErrValueSize
	}
	v.m.Upsert(h, k, binary.BigEndian.Uint64(value))
	return nil
}

func (v *u64View) Get(h *Handle, key []byte) ([]byte, bool) {
	k, err := decodeU64Key(key)
	if err != nil {
		return nil, false
	}
	val, ok := v.m.Search(h, k)
	if !ok {
		return nil, false
	}
	out := make([]byte, 8)
	binary.BigEndian.PutUint64(out, val)
	return out, true
}

func (v *u64View) Delete(h *Handle, key []byte) bool {
	k, err := decodeU64Key(key)
	if err != nil {
		return false
	}
	_, ok := v.m.Delete(h, k)
	return ok
}

func (v *u64View) Contains(h *Handle, key []byte) bool {
	_, ok := v.Get(h, key)
	return ok
}

func (v *u64View) Len(h *Handle) int { return v.m.Len(h) }

func (v *u64View) Range(h *Handle, fn func(key, value []byte) bool) {
	v.m.Range(h, func(k, val uint64) bool {
		kb, vb := make([]byte, 8), make([]byte, 8)
		binary.BigEndian.PutUint64(kb, k)
		binary.BigEndian.PutUint64(vb, val)
		return fn(kb, vb)
	})
}

func (v *u64View) Kind() Kind   { return v.kind }
func (v *u64View) Name() string { return v.name }

// --- ordered uint64-plane adapter ----------------------------------------

// u64Scanner is implemented by typed wrappers with native ordered
// iteration plumbing (the skip list's SeekGE-positioned Scan).
type u64Scanner interface {
	Scan(h *Handle, start, end uint64, fn func(key, value uint64) bool)
}

// u64OrderedView wraps u64View over the ordered uint64 kinds (KindList,
// KindSkipList, KindBST — structures whose Range already iterates in
// ascending key order), adding the OrderedMap methods. Because keys are a
// fixed 8 big-endian bytes, bytewise order coincides with numeric order,
// and Scan bounds of any length compare lexicographically.
type u64OrderedView struct{ u64View }

func (v *u64OrderedView) Scan(h *Handle, start, end []byte, fn func(key, value []byte) bool) {
	emit := func(k, val uint64) bool {
		kb, vb := make([]byte, 8), make([]byte, 8)
		binary.BigEndian.PutUint64(kb, k)
		binary.BigEndian.PutUint64(vb, val)
		return fn(kb, vb)
	}
	// Fast path: exact 8-byte (or open) bounds on a structure with native
	// seek plumbing position with the index instead of filtering.
	if s, ok := v.m.(u64Scanner); ok && (len(start) == 0 || len(start) == 8) && (end == nil || len(end) == 8) {
		lo := uint64(MinKey)
		if len(start) == 8 {
			if k := binary.BigEndian.Uint64(start); k > lo {
				lo = k
			}
		}
		hi := uint64(0) // 0 = through MaxKey
		if len(end) == 8 {
			hi = binary.BigEndian.Uint64(end)
			if hi == 0 {
				return // end below every storable key
			}
		}
		if lo > MaxKey {
			return
		}
		s.Scan(h, lo, hi, emit)
		return
	}
	// Slow path (list, BST, or ragged bounds): the underlying Range walks
	// without its own epoch section, so open one here — retired nodes then
	// cannot be reclaimed mid-walk, making the OrderedMap concurrency
	// contract hold for every ordered kind.
	h.c.Epoch().Begin()
	defer h.c.Epoch().End()
	v.m.Range(h, func(k, val uint64) bool {
		var kb [8]byte
		binary.BigEndian.PutUint64(kb[:], k)
		if len(start) > 0 && bytes.Compare(kb[:], start) < 0 {
			return true
		}
		if end != nil && bytes.Compare(kb[:], end) >= 0 {
			return false // ascending: nothing after can be in range
		}
		return emit(k, val)
	})
}

func (v *u64OrderedView) Ascend(h *Handle, fn func(key, value []byte) bool) {
	v.Scan(h, nil, nil, fn)
}

func (v *u64OrderedView) Descend(h *Handle, fn func(key, value []byte) bool) {
	type kv struct{ k, v []byte }
	var all []kv
	v.Scan(h, nil, nil, func(k, val []byte) bool {
		all = append(all, kv{k, val})
		return true
	})
	for i := len(all) - 1; i >= 0; i-- {
		if !fn(all[i].k, all[i].v) {
			return
		}
	}
}

func (v *u64OrderedView) Min(h *Handle) (key, value []byte, ok bool) {
	v.Scan(h, nil, nil, func(k, val []byte) bool {
		key, value, ok = k, val, true
		return false
	})
	return key, value, ok
}

func (v *u64OrderedView) Max(h *Handle) (key, value []byte, ok bool) {
	v.Scan(h, nil, nil, func(k, val []byte) bool {
		key, value, ok = k, val, true
		return true
	})
	return key, value, ok
}
