package sharded

// Pool-level elastic capacity: Grow fans out to every shard and re-commits
// the manifest; elastic reopen adopts grown geometry, including the torn
// state where shards grew but the manifest rewrite was lost.

import (
	"fmt"
	"testing"
)

func TestPoolGrowMem(t *testing.T) {
	p, err := Open(WithShards(4), WithShardSize(256<<10), WithMaxShardSize(4<<20))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if got := p.SizeBytes(); got != 4*(256<<10) {
		t.Fatalf("SizeBytes = %d, want %d", got, 4*(256<<10))
	}
	if got := p.MaxSizeBytes(); got != 4*(4<<20) {
		t.Fatalf("MaxSizeBytes = %d, want %d", got, 4*(4<<20))
	}
	if err := p.Grow(4 << 20); err != nil {
		t.Fatal(err)
	}
	if got := p.SizeBytes(); got != 4<<20 {
		t.Fatalf("SizeBytes after Grow = %d, want %d", got, 4<<20)
	}
	for i, rt := range p.Runtimes() {
		if got := rt.SizeBytes(); got != 1<<20 {
			t.Fatalf("shard %d size = %d, want %d", i, got, 1<<20)
		}
	}
	if err := p.Grow(64 << 20); err == nil {
		t.Fatal("Grow past the per-shard reserve must fail")
	}
}

func TestPoolGrowFileReopen(t *testing.T) {
	dir := t.TempDir()
	open := func() *Pool {
		p, err := Open(WithShards(2), WithShardSize(256<<10), WithMaxShardSize(4<<20),
			WithDir(dir))
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	p := open()
	m, err := p.Map("t", 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if err := m.Set([]byte(fmt.Sprintf("k%03d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Grow(2 << 20); err != nil {
		t.Fatal(err)
	}
	grown := p.SizeBytes()
	if grown != 2<<20 {
		t.Fatalf("SizeBytes after Grow = %d, want %d", grown, 2<<20)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	// Elastic reopen with the ORIGINAL shard size adopts the grown geometry
	// from the rewritten manifest.
	p2 := open()
	defer p2.Close()
	if !p2.Recovered() {
		t.Fatal("reopen must attach")
	}
	if got := p2.SizeBytes(); got != grown {
		t.Fatalf("reopened SizeBytes = %d, want %d", got, grown)
	}
	m2, err := p2.Map("t", 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if v, ok := m2.Get([]byte(fmt.Sprintf("k%03d", i))); !ok || string(v) != "v" {
			t.Fatalf("k%03d lost across grow+reopen", i)
		}
	}
}

// TestPoolGrowTornManifest reopens a pool whose shards grew but whose
// manifest rewrite was lost (crash between the two): the elastic path adopts
// each shard's committed capacity, and re-running Grow reconverges the
// manifest.
func TestPoolGrowTornManifest(t *testing.T) {
	dir := t.TempDir()
	p, err := Open(WithShards(2), WithShardSize(256<<10), WithMaxShardSize(4<<20),
		WithDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	oldManifest := manifest{
		Magic: manifestMagic, Version: manifestVersion,
		Shards: 2, ShardBytes: 256 << 10, Hash: routeHashID,
	}
	if err := p.Grow(2 << 20); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate the torn state: shard files grown, manifest still old.
	if err := writeManifest(dir, oldManifest); err != nil {
		t.Fatal(err)
	}

	p2, err := Open(WithShards(2), WithShardSize(256<<10), WithMaxShardSize(4<<20),
		WithDir(dir))
	if err != nil {
		t.Fatalf("reopen after torn grow: %v", err)
	}
	defer p2.Close()
	if got := p2.SizeBytes(); got != 2<<20 {
		t.Fatalf("torn reopen SizeBytes = %d, want %d (shards' committed capacity)", got, 2<<20)
	}
	if err := p2.Grow(2 << 20); err != nil {
		t.Fatalf("reconverging Grow: %v", err)
	}
	man, ok, err := readManifest(dir, &config{})
	if err != nil || !ok {
		t.Fatalf("manifest after reconverge: ok=%v err=%v", ok, err)
	}
	if man.ShardBytes != 1<<20 {
		t.Fatalf("manifest ShardBytes = %d, want %d", man.ShardBytes, 1<<20)
	}
}
