package sharded

import (
	"bytes"
	"fmt"
	"iter"
	"sync"

	"repro/logfree"
)

// Map is the hash-routed view of one byte-keyed durable hash map per shard
// (logfree KindMap), opened under the same name on every shard. Point
// operations route to the key's shard and behave exactly as on a single
// runtime; aggregate operations (Len, All, Items) combine the shards. All
// methods are safe for concurrent use from any goroutine.
type Map struct {
	pool  *Pool
	parts []*logfree.ByteMap
	name  string
}

// Map opens or creates the byte-keyed durable map registered under name on
// every shard. buckets sizes each SHARD's table (keys spread ~uniformly, so
// size it for len(keys)/Shards — a pool-wide budget divided by Shards).
func (p *Pool) Map(name string, buckets int) (*Map, error) {
	parts := make([]*logfree.ByteMap, len(p.rts))
	for i, rt := range p.rts {
		m, err := rt.Map(name, buckets)
		if err != nil {
			return nil, fmt.Errorf("sharded: opening %q on shard %d: %w", name, i, err)
		}
		parts[i] = m
	}
	return &Map{pool: p, parts: parts, name: name}, nil
}

// WithSession returns a view whose operations run on s's pinned per-shard
// sessions instead of drawing pooled ones; see logfree.ByteMap.WithSession.
func (m *Map) WithSession(s *PoolSession) *Map {
	parts := make([]*logfree.ByteMap, len(m.parts))
	for i, part := range m.parts {
		parts[i] = part.WithSession(s.ss[i])
	}
	return &Map{pool: m.pool, parts: parts, name: m.name}
}

// part returns the shard-local map owning key.
func (m *Map) part(key []byte) *logfree.ByteMap { return m.parts[m.pool.shardOf(key)] }

// Set binds key to value (upsert), durably, on the key's shard.
func (m *Map) Set(key, value []byte) error { return m.part(key).Set(key, value) }

// SetItem binds key to value with a metadata field and aux word; reports
// whether the key was newly created.
func (m *Map) SetItem(key, value []byte, meta uint16, aux uint64) (created bool, err error) {
	return m.part(key).SetItem(key, value, meta, aux)
}

// Get returns a copy of the value bound to key.
func (m *Map) Get(key []byte) ([]byte, bool) { return m.part(key).Get(key) }

// GetItem returns the value with its metadata field and aux word.
func (m *Map) GetItem(key []byte) (value []byte, meta uint16, aux uint64, ok bool) {
	return m.part(key).GetItem(key)
}

// GetAux returns only the aux word bound to key (no value copy).
func (m *Map) GetAux(key []byte) (aux uint64, ok bool) { return m.part(key).GetAux(key) }

// SetAux durably replaces the aux word of an existing entry in place; false
// if key is absent.
func (m *Map) SetAux(key []byte, aux uint64) bool { return m.part(key).SetAux(key, aux) }

// Delete removes key durably; false if absent.
func (m *Map) Delete(key []byte) bool { return m.part(key).Delete(key) }

// Contains reports whether key is present.
func (m *Map) Contains(key []byte) bool { return m.part(key).Contains(key) }

// Len sums live keys across shards (quiescent use).
func (m *Map) Len() int {
	n := 0
	for _, part := range m.parts {
		n += part.Len()
	}
	return n
}

// All iterates over live entries of every shard, shard by shard (unordered,
// as for any hash map). Each shard's reclamation epoch section is held only
// while that shard streams.
func (m *Map) All() iter.Seq2[[]byte, []byte] {
	return func(yield func([]byte, []byte) bool) {
		for _, part := range m.parts {
			for k, v := range part.All() {
				if !yield(k, v) {
					return
				}
			}
		}
	}
}

// Items is All including each entry's metadata and aux word.
func (m *Map) Items() iter.Seq2[[]byte, logfree.Item] {
	return func(yield func([]byte, logfree.Item) bool) {
		for _, part := range m.parts {
			for k, it := range part.Items() {
				if !yield(k, it) {
					return
				}
			}
		}
	}
}

// Batch starts an operation batch against this map; see Batch.
func (m *Map) Batch() *Batch {
	return &Batch{
		route: m.pool.shardOf,
		mk:    func(i int) *logfree.Batch { return m.parts[i].Batch() },
		per:   make([]*logfree.Batch, len(m.parts)),
	}
}

// Kind reports logfree.KindMap.
func (m *Map) Kind() logfree.Kind { return logfree.KindMap }

// Name reports the directory name the map is registered under (the same on
// every shard).
func (m *Map) Name() string { return m.name }

// --- OrderedMap -----------------------------------------------------------

// OrderedMap is the hash-routed view of one ordered byte-keyed durable map
// per shard (logfree KindOrderedMap). Point operations route to the key's
// shard; ordered queries (Scan, Ascend, Descend, Min, Max) merge the
// shards' ordered streams on the fly, so iteration is in strictly ascending
// (or descending) byte order across the WHOLE pool, not per shard. All
// methods are safe for concurrent use from any goroutine.
type OrderedMap struct {
	pool  *Pool
	parts []*logfree.OrderedByteMap
	name  string
}

// OrderedMap opens or creates the ordered byte-keyed durable map registered
// under name on every shard.
func (p *Pool) OrderedMap(name string) (*OrderedMap, error) {
	parts := make([]*logfree.OrderedByteMap, len(p.rts))
	for i, rt := range p.rts {
		m, err := rt.OrderedMap(name)
		if err != nil {
			return nil, fmt.Errorf("sharded: opening %q on shard %d: %w", name, i, err)
		}
		parts[i] = m
	}
	return &OrderedMap{pool: p, parts: parts, name: name}, nil
}

// WithSession returns a view whose operations run on s's pinned per-shard
// sessions; see logfree.OrderedByteMap.WithSession.
func (m *OrderedMap) WithSession(s *PoolSession) *OrderedMap {
	parts := make([]*logfree.OrderedByteMap, len(m.parts))
	for i, part := range m.parts {
		parts[i] = part.WithSession(s.ss[i])
	}
	return &OrderedMap{pool: m.pool, parts: parts, name: m.name}
}

func (m *OrderedMap) part(key []byte) *logfree.OrderedByteMap {
	return m.parts[m.pool.shardOf(key)]
}

// Set binds key to value (upsert), durably, on the key's shard.
func (m *OrderedMap) Set(key, value []byte) error { return m.part(key).Set(key, value) }

// SetItem binds key to value with a metadata field and aux word.
func (m *OrderedMap) SetItem(key, value []byte, meta uint16, aux uint64) (created bool, err error) {
	return m.part(key).SetItem(key, value, meta, aux)
}

// Get returns a copy of the value bound to key.
func (m *OrderedMap) Get(key []byte) ([]byte, bool) { return m.part(key).Get(key) }

// GetItem returns the value with its metadata field and aux word.
func (m *OrderedMap) GetItem(key []byte) (value []byte, meta uint16, aux uint64, ok bool) {
	return m.part(key).GetItem(key)
}

// SetAux durably replaces the aux word of an existing entry in place.
func (m *OrderedMap) SetAux(key []byte, aux uint64) bool { return m.part(key).SetAux(key, aux) }

// Delete removes key durably; false if absent.
func (m *OrderedMap) Delete(key []byte) bool { return m.part(key).Delete(key) }

// Contains reports whether key is present.
func (m *OrderedMap) Contains(key []byte) bool { return m.part(key).Contains(key) }

// Len sums live keys across shards (quiescent use).
func (m *OrderedMap) Len() int {
	n := 0
	for _, part := range m.parts {
		n += part.Len()
	}
	return n
}

// All iterates every live entry in ascending byte-key order across the
// whole pool (N-way merge of the shards' ordered streams).
func (m *OrderedMap) All() iter.Seq2[[]byte, []byte] { return m.Scan(nil, nil) }

// Items is All including each entry's metadata and aux word.
func (m *OrderedMap) Items() iter.Seq2[[]byte, logfree.Item] { return m.ScanItems(nil, nil) }

// mergeAsc streams an N-way ascending merge of per-shard ordered sequences.
// Each shard contributes a pull-style cursor (iter.Pull2 suspends the
// shard's epoch-protected range loop between pulls); the merge repeatedly
// yields the smallest head. Shard counts are small (≤ a few dozen), so a
// linear min scan beats a heap. cmp flips the direction for descending
// merges. Distinct keys never collide across shards (one shard owns each
// key), so tie order is irrelevant.
func mergeAsc[V any](seqs []iter.Seq2[[]byte, V], less func(a, b []byte) bool) iter.Seq2[[]byte, V] {
	return func(yield func([]byte, V) bool) {
		type cursor struct {
			k    []byte
			v    V
			next func() ([]byte, V, bool)
		}
		cur := make([]cursor, 0, len(seqs))
		for _, seq := range seqs {
			next, stop := iter.Pull2(seq)
			defer stop()
			if k, v, ok := next(); ok {
				cur = append(cur, cursor{k, v, next})
			}
		}
		for len(cur) > 0 {
			mi := 0
			for i := 1; i < len(cur); i++ {
				if less(cur[i].k, cur[mi].k) {
					mi = i
				}
			}
			if !yield(cur[mi].k, cur[mi].v) {
				return
			}
			if k, v, ok := cur[mi].next(); ok {
				cur[mi].k, cur[mi].v = k, v
			} else {
				cur[mi] = cur[len(cur)-1]
				cur = cur[:len(cur)-1]
			}
		}
	}
}

func ascLess(a, b []byte) bool  { return bytes.Compare(a, b) < 0 }
func descLess(a, b []byte) bool { return bytes.Compare(a, b) > 0 }

// Scan iterates every live key k with start <= k < end in strictly
// ascending byte order across the whole pool. Not a snapshot; each shard's
// epoch section is held for the duration of the merge.
func (m *OrderedMap) Scan(start, end []byte) iter.Seq2[[]byte, []byte] {
	seqs := make([]iter.Seq2[[]byte, []byte], len(m.parts))
	for i, part := range m.parts {
		seqs[i] = part.Scan(start, end)
	}
	return mergeAsc(seqs, ascLess)
}

// ScanItems is Scan including each entry's metadata and aux word.
func (m *OrderedMap) ScanItems(start, end []byte) iter.Seq2[[]byte, logfree.Item] {
	seqs := make([]iter.Seq2[[]byte, logfree.Item], len(m.parts))
	for i, part := range m.parts {
		seqs[i] = part.ScanItems(start, end)
	}
	return mergeAsc(seqs, ascLess)
}

// Ascend iterates every live key in ascending byte order.
func (m *OrderedMap) Ascend() iter.Seq2[[]byte, []byte] { return m.Scan(nil, nil) }

// Descend iterates every live key in descending byte order (reverse N-way
// merge of the shards' Descend streams).
func (m *OrderedMap) Descend() iter.Seq2[[]byte, []byte] {
	seqs := make([]iter.Seq2[[]byte, []byte], len(m.parts))
	for i, part := range m.parts {
		seqs[i] = part.Descend()
	}
	return mergeAsc(seqs, descLess)
}

// Min returns the smallest live key and its value across all shards.
func (m *OrderedMap) Min() (key, value []byte, ok bool) {
	for _, part := range m.parts {
		k, v, has := part.Min()
		if has && (!ok || bytes.Compare(k, key) < 0) {
			key, value, ok = k, v, true
		}
	}
	return key, value, ok
}

// Max returns the largest live key and its value across all shards.
func (m *OrderedMap) Max() (key, value []byte, ok bool) {
	for _, part := range m.parts {
		k, v, has := part.Max()
		if has && (!ok || bytes.Compare(k, key) > 0) {
			key, value, ok = k, v, true
		}
	}
	return key, value, ok
}

// Batch starts an operation batch against this map; see Batch.
func (m *OrderedMap) Batch() *Batch {
	return &Batch{
		route: m.pool.shardOf,
		mk:    func(i int) *logfree.Batch { return m.parts[i].Batch() },
		per:   make([]*logfree.Batch, len(m.parts)),
	}
}

// Kind reports logfree.KindOrderedMap.
func (m *OrderedMap) Kind() logfree.Kind { return logfree.KindOrderedMap }

// Name reports the directory name the map is registered under.
func (m *OrderedMap) Name() string { return m.name }

// --- Batch ----------------------------------------------------------------

// Batch collects Set/SetItem/Delete operations against one sharded map and
// applies them on Commit, bucketed per shard and committed per-shard IN
// PARALLEL (one goroutine per shard that has ops), each shard paying its
// own single amortized content fence (see logfree.Batch).
//
// Crash semantics: within one shard the per-op prefix guarantee of
// logfree.Batch holds exactly — ops routed to that shard become durable in
// their buffered order, each individually crash-atomic. ACROSS shards there
// is no atomicity and no ordering: a crash mid-commit can persist all of
// one shard's ops and none of another's. Callers that need a global prefix
// must keep the batch's keys on one shard (or use an unsharded runtime).
//
// A Batch is not safe for concurrent use; Commit may be called from any
// goroutine.
type Batch struct {
	route func([]byte) int
	mk    func(int) *logfree.Batch
	per   []*logfree.Batch
	n     int
}

func (b *Batch) shard(key []byte) *logfree.Batch {
	i := b.route(key)
	if b.per[i] == nil {
		b.per[i] = b.mk(i)
	}
	return b.per[i]
}

// Set buffers a durable upsert of key to value (meta 0, aux 0).
func (b *Batch) Set(key, value []byte) *Batch { return b.SetItem(key, value, 0, 0) }

// SetItem buffers a durable upsert with the entry's metadata field and aux
// word. Key and value bytes are copied; callers may reuse their slices.
func (b *Batch) SetItem(key, value []byte, meta uint16, aux uint64) *Batch {
	b.shard(key).SetItem(key, value, meta, aux)
	b.n++
	return b
}

// Delete buffers a durable delete of key.
func (b *Batch) Delete(key []byte) *Batch {
	b.shard(key).Delete(key)
	b.n++
	return b
}

// Len reports the number of buffered operations across all shards.
func (b *Batch) Len() int { return b.n }

// Reset discards the buffered operations, keeping per-shard backing storage
// for reuse.
func (b *Batch) Reset() *Batch {
	for _, sb := range b.per {
		if sb != nil {
			sb.Reset()
		}
	}
	b.n = 0
	return b
}

// Commit applies the buffered operations (see the type comment for crash
// semantics) and resets the batch on success. The total op count is held to
// logfree.MaxBatchOps, matching the single-runtime contract. On error the
// batch keeps its ops; shards that committed before the failure stay
// committed (exactly the cross-shard crash semantics).
func (b *Batch) Commit() error {
	if b.n > logfree.MaxBatchOps {
		return fmt.Errorf("%w: %d ops (max %d)", logfree.ErrBatchTooLarge, b.n, logfree.MaxBatchOps)
	}
	if b.n == 0 {
		return nil
	}
	var live []*logfree.Batch
	for _, sb := range b.per {
		if sb != nil && sb.Len() > 0 {
			live = append(live, sb)
		}
	}
	var firstErr error
	if len(live) == 1 {
		firstErr = live[0].Commit()
	} else {
		errs := make([]error, len(live))
		var wg sync.WaitGroup
		for i, sb := range live {
			wg.Add(1)
			go func(i int, sb *logfree.Batch) {
				defer wg.Done()
				errs[i] = sb.Commit()
			}(i, sb)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				firstErr = err
				break
			}
		}
	}
	if firstErr != nil {
		return firstErr
	}
	b.n = 0
	return nil
}
