// Package sharded runs N independent logfree Runtimes as one pool and
// routes byte keys to shards by hash, re-exporting the v3 byte-key surface
// (Map/OrderedMap open-or-create, implicit sessions, Batch, iter.Seq2
// iterators) on top.
//
// Why a pool instead of one bigger runtime: every substrate of a single
// runtime — device write-back locks, allocator, epoch manager, skip-list
// index — is shared state that every operation touches. A pool multiplies
// the whole stack: each shard owns a private device, allocator, epochs and
// session pool, so shards share *nothing* on the write path and scale with
// cores (in the spirit of TQCache's ShardedCache worker-per-shard design).
// Per-shard structures are also 1/N the size, which shortens the dominant
// CPU cost of the single-runtime write path (ordered-index key-compare
// searches; see README §Sharding for the profile).
//
// Topology. The shard count is fixed at pool creation (power of two,
// default GOMAXPROCS rounded up) and routing is a stable hash of the full
// key (FNV-1a 64 finalized with the murmur3 fmix64 mixer), independent of
// any hash used inside logfree — the same key maps to the same shard in
// every process, on every backend, forever. File-backed pools persist the
// topology in a manifest that Open validates, so a pool can never silently
// reopen with the wrong shard count or geometry.
//
// Durability. Each shard fences independently: a Set that returned is
// durably linearized on its shard exactly as on a single runtime. A Batch
// whose keys span shards commits the per-shard groups in parallel; each
// shard keeps the per-op prefix crash guarantee for its own ops, but there
// is NO cross-shard atomicity and no ordering between ops routed to
// different shards — a crash can persist shard A's ops and none of shard
// B's. Batches needing a global prefix must route through one shard (or one
// runtime).
package sharded

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/nvram"
	"repro/logfree"
)

const (
	// poolBase names the pool's files inside its directory: shard images are
	// "<poolBase>.shard-%03d" and the manifest is "<poolBase>.manifest".
	poolBase = "nvpool"
	// manifestMagic identifies a pool manifest.
	manifestMagic = "NVPOOL01"
	// manifestVersion is the current manifest layout version.
	manifestVersion = 1
	// routeHashID names the key→shard hash so a manifest written by a build
	// with different routing can never be opened: entries would already live
	// on the "wrong" shards.
	routeHashID = "fnv1a64-fmix64-v1"
	// maxShards bounds the topology (file naming uses three digits; far past
	// any sane core count either way).
	maxShards = 256
)

// defaultShardSize is the per-shard device capacity when none is configured.
const defaultShardSize = 64 << 20

// config collects the pool options.
type config struct {
	shards       int
	shardSize    uint64
	maxShardSize uint64
	dir          string
	kind         logfree.DeviceKind
	durability   logfree.Durability
	writeLatency time.Duration
	maxThreads   int
	linkCache    bool
	latencySet   bool
	fileSyncOpt  bool // provenance of the deprecated WithFileSync, for its diagnostic
}

// Option configures a Pool.
type Option func(*config)

// WithShards sets the shard count, rounded up to a power of two (default:
// GOMAXPROCS rounded up). Opening an existing file-backed pool with an
// explicit count that disagrees with its manifest is an error; 0 adopts.
func WithShards(n int) Option { return func(c *config) { c.shards = n } }

// WithShardSize sets each shard's device capacity in bytes (default 64 MiB
// per shard — note: per shard, not pool-wide). Opening an existing
// file-backed pool with an explicit size that disagrees with its manifest
// is an error; 0 adopts.
func WithShardSize(bytes uint64) Option { return func(c *config) { c.shardSize = bytes } }

// WithMaxShardSize reserves per-shard growth headroom: every shard starts at
// WithShardSize bytes but Pool.Grow can extend it online up to this many
// (see logfree.WithMaxSize). When set, reopening an existing pool ADOPTS the
// shards' committed capacity — whatever the last durable grow reached —
// instead of erroring on a WithShardSize disagreement: an elastic pool's
// size is state, not configuration. Zero freezes shards at WithShardSize.
func WithMaxShardSize(bytes uint64) Option { return func(c *config) { c.maxShardSize = bytes } }

// WithDevice names the persistence substrate of every shard. The spec's
// Path is the POOL DIRECTORY: shards live under it as "nvpool.shard-000",
// "nvpool.shard-001", ... plus a manifest recording the topology (including
// the backend kind). Supported kinds: MemDevice (in-process, the default),
// FileDevice(dir) and DAXDevice(dir); BackendDevice cannot describe N
// per-shard backends and is rejected by Open. Open-or-create: a directory
// holding a manifest is validated and recovered (all shards in parallel);
// otherwise the pool is formatted fresh and the manifest write is the
// creation commit point.
func WithDevice(spec logfree.DeviceSpec) Option {
	return func(c *config) { c.dir = spec.Path; c.kind = spec.Kind }
}

// WithDurability sets every shard's acknowledged-operation policy; see
// logfree.WithDurability. Each shard applies it independently (per-shard
// fences, syncers and flush timers); cross-shard ordering is unaffected.
func WithDurability(d logfree.Durability) Option {
	return func(c *config) { c.durability = d }
}

// WithDir backs every shard with an mmap'd file under dir.
//
// Deprecated: use WithDevice(logfree.FileDevice(dir)).
func WithDir(dir string) Option { return WithDevice(logfree.FileDevice(dir)) }

// WithFileSync(true) makes acknowledged operations machine-crash durable on
// every shard.
//
// Deprecated: use WithDurability(logfree.Strict()). WithFileSync(false) is
// a no-op, so conditional call sites compose with WithDurability.
func WithFileSync(strict bool) Option {
	return func(c *config) {
		c.fileSyncOpt = c.fileSyncOpt || strict
		if strict {
			c.durability = logfree.Strict()
		}
	}
}

// WithWriteLatency sets the simulated NVRAM write latency of every shard.
func WithWriteLatency(d time.Duration) Option {
	return func(c *config) { c.writeLatency = d; c.latencySet = true }
}

// WithMaxThreads sizes each shard's formatted session region; see
// logfree.WithMaxThreads. Not a cap — sessions grow on demand.
func WithMaxThreads(n int) Option { return func(c *config) { c.maxThreads = n } }

// WithLinkCache toggles the §4 link cache on every shard; see
// logfree.WithLinkCache (file-backed pools should leave it off, exactly as
// with a single file-backed runtime).
func WithLinkCache(on bool) Option { return func(c *config) { c.linkCache = on } }

// manifest is the durable topology record of a file-backed pool, written
// atomically (tmp + rename) after every shard file exists. Reopening
// validates it before touching any shard, so a pool can never come back
// with a different shard count, shard geometry, or routing hash than it was
// created with.
type manifest struct {
	Magic      string `json:"magic"`
	Version    int    `json:"version"`
	Shards     int    `json:"shards"`
	ShardBytes uint64 `json:"shard_bytes"`
	Hash       string `json:"hash"`
	// Backend records the shard backend kind ("file" or "dax"); empty in
	// manifests written before the DAX backend existed and means "file".
	Backend string `json:"backend,omitempty"`
}

// Pool is a set of independent logfree Runtimes with hash-routed byte keys.
// All exported methods are safe for concurrent use unless noted.
type Pool struct {
	rts  []*logfree.Runtime
	mask uint64
	cfg  config

	closed    atomic.Bool
	growMu    sync.Mutex // serializes Grow (per-shard grows + manifest rewrite)
	recovered bool
	recDur    []time.Duration // per-shard open+recovery wall clock
}

func buildConfig(opts []Option) config {
	c := config{}
	for _, o := range opts {
		o(&c)
	}
	return c
}

// nextPow2 rounds n up to a power of two (minimum 1).
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

func shardPath(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("%s.shard-%03d", poolBase, i))
}

func manifestPath(dir string) string {
	return filepath.Join(dir, poolBase+".manifest")
}

// validateManifest checks a loaded manifest against this build and the
// caller's explicit options (0 values adopt the manifest's).
func (m *manifest) validate(c *config) error {
	if m.Magic != manifestMagic {
		return fmt.Errorf("sharded: not a pool manifest (magic %q)", m.Magic)
	}
	if m.Version != manifestVersion {
		return fmt.Errorf("sharded: pool manifest layout version %d, want %d", m.Version, manifestVersion)
	}
	if m.Shards < 1 || m.Shards > maxShards || m.Shards&(m.Shards-1) != 0 {
		return fmt.Errorf("sharded: pool manifest shard count %d is not a power of two in [1,%d]", m.Shards, maxShards)
	}
	if m.ShardBytes == 0 {
		return fmt.Errorf("sharded: pool manifest shard capacity is zero")
	}
	if m.Hash != routeHashID {
		return fmt.Errorf("sharded: pool routed by hash %q, this build routes by %q", m.Hash, routeHashID)
	}
	if c.shards != 0 && nextPow2(c.shards) != m.Shards {
		return fmt.Errorf("sharded: pool formatted with %d shards, requested %d", m.Shards, nextPow2(c.shards))
	}
	if c.shardSize != 0 && c.maxShardSize == 0 && c.shardSize != m.ShardBytes {
		// Elastic pools (maxShardSize set) adopt the manifest's shard size:
		// the pool may have grown past any initial-size flag since creation.
		return fmt.Errorf("sharded: pool shards formatted for %d bytes, requested %d", m.ShardBytes, c.shardSize)
	}
	if c.kind != logfree.DeviceMem {
		// An unspecified kind (zero config, manifest inspection) adopts; an
		// explicit one must match what the pool was formatted on.
		if got := m.backendKind(); got != c.kind {
			return fmt.Errorf("sharded: pool formatted on %q shards, requested %q", got, c.kind)
		}
	}
	return nil
}

// backendKind decodes the manifest's backend field (empty = file: manifests
// predating the DAX backend never recorded one).
func (m *manifest) backendKind() logfree.DeviceKind {
	if m.Backend == logfree.DeviceDAX.String() {
		return logfree.DeviceDAX
	}
	return logfree.DeviceFile
}

// readManifest loads and validates dir's manifest; ok=false means no
// manifest exists (fresh-create path).
func readManifest(dir string, c *config) (m manifest, ok bool, err error) {
	raw, err := os.ReadFile(manifestPath(dir))
	if os.IsNotExist(err) {
		return manifest{}, false, nil
	}
	if err != nil {
		return manifest{}, false, fmt.Errorf("sharded: read pool manifest: %w", err)
	}
	if err := json.Unmarshal(raw, &m); err != nil {
		return manifest{}, false, fmt.Errorf("sharded: corrupt pool manifest %s: %w", manifestPath(dir), err)
	}
	if err := m.validate(c); err != nil {
		return manifest{}, false, err
	}
	return m, true, nil
}

// writeManifest durably commits the pool's topology: tmp + fsync + rename,
// so the manifest either exists complete or not at all. Its appearance is
// the pool-creation commit point.
func writeManifest(dir string, m manifest) error {
	raw, err := json.Marshal(m)
	if err != nil {
		return err
	}
	tmp := manifestPath(dir) + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("sharded: write pool manifest: %w", err)
	}
	if _, err := f.Write(append(raw, '\n')); err != nil {
		f.Close()
		return fmt.Errorf("sharded: write pool manifest: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("sharded: sync pool manifest: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("sharded: close pool manifest: %w", err)
	}
	if err := os.Rename(tmp, manifestPath(dir)); err != nil {
		return fmt.Errorf("sharded: commit pool manifest: %w", err)
	}
	return nil
}

// Open creates or reopens a pool. Shards open concurrently — on a
// file-backed pool that is also the parallel recovery path, each shard
// running its own attach sweep in its own goroutine. If any shard fails,
// every shard that did open is closed again (releasing its mapping and
// flock) before Open returns the error: a failed Open never leaks a locked
// backing file.
func Open(opts ...Option) (*Pool, error) {
	cfg := buildConfig(opts)
	if cfg.shards < 0 || cfg.shards > maxShards {
		return nil, fmt.Errorf("sharded: shard count %d out of range [0,%d]", cfg.shards, maxShards)
	}
	if cfg.fileSyncOpt && cfg.dir == "" {
		return nil, fmt.Errorf("sharded: WithFileSync requires WithDir")
	}
	if cfg.kind == logfree.DeviceBackend {
		return nil, fmt.Errorf("sharded: BackendDevice cannot describe per-shard backends; use FileDevice or DAXDevice")
	}

	n := cfg.shards
	if n == 0 {
		n = runtime.GOMAXPROCS(0)
	}
	n = nextPow2(n)
	size := cfg.shardSize
	attached := false

	if cfg.dir != "" {
		man, ok, err := readManifest(cfg.dir, &cfg)
		if err != nil {
			return nil, err
		}
		if ok {
			// Reopen: the manifest owns the topology; missing shard files are
			// rejected here rather than silently recreated empty by the
			// open-or-create file backend below.
			n, size, attached = man.Shards, man.ShardBytes, true
			for i := 0; i < n; i++ {
				if _, err := os.Stat(shardPath(cfg.dir, i)); err != nil {
					return nil, fmt.Errorf("sharded: pool manifest names %d shards but shard file %s is missing: %w",
						n, shardPath(cfg.dir, i), err)
				}
			}
		} else if err := os.MkdirAll(cfg.dir, 0o755); err != nil {
			return nil, fmt.Errorf("sharded: create pool directory: %w", err)
		}
	}
	if size == 0 {
		size = defaultShardSize
	}

	shardOpts := func(i int) []logfree.Option {
		o := []logfree.Option{
			logfree.WithSize(size),
			logfree.WithMaxSize(cfg.maxShardSize),
			logfree.WithLinkCache(cfg.linkCache),
			logfree.WithDurability(cfg.durability),
		}
		if cfg.latencySet {
			o = append(o, logfree.WithWriteLatency(cfg.writeLatency))
		}
		if cfg.maxThreads > 0 {
			o = append(o, logfree.WithMaxThreads(cfg.maxThreads))
		}
		if cfg.dir != "" {
			spec := logfree.FileDevice(shardPath(cfg.dir, i))
			if cfg.kind == logfree.DeviceDAX {
				spec = logfree.DAXDevice(shardPath(cfg.dir, i))
			}
			o = append(o, logfree.WithDevice(spec))
		}
		return o
	}

	rts := make([]*logfree.Runtime, n)
	durs := make([]time.Duration, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			start := time.Now()
			rts[i], errs[i] = logfree.New(shardOpts(i)...)
			durs[i] = time.Since(start)
			// Elastic reopen adopts each shard file's committed capacity (it
			// may exceed the manifest when a crash hit between the per-shard
			// grows and the manifest rewrite — Grow reconverges it), but a
			// shard SMALLER than the manifest promises is a swapped or
			// corrupted file, exactly the geometry mismatch the non-elastic
			// path rejects via the backend header check.
			if errs[i] == nil && attached && cfg.maxShardSize != 0 && rts[i].SizeBytes() < size {
				errs[i] = fmt.Errorf("shard formatted for %d bytes, pool manifest promises %d", rts[i].SizeBytes(), size)
				rts[i].Close()
				rts[i] = nil
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err == nil {
			continue
		}
		// Error-path hygiene: close every shard that DID open (logfree.New
		// already closed the device of the shard that failed), releasing
		// mappings and flocks, so a retry or a repair can open the files.
		for _, rt := range rts {
			if rt != nil {
				rt.Close()
			}
		}
		return nil, fmt.Errorf("sharded: opening shard %d of %d: %w", i, n, err)
	}

	if cfg.dir != "" && !attached {
		if err := writeManifest(cfg.dir, manifest{
			Magic: manifestMagic, Version: manifestVersion,
			Shards: n, ShardBytes: size, Hash: routeHashID,
			Backend: cfg.kind.String(),
		}); err != nil {
			for _, rt := range rts {
				rt.Close()
			}
			return nil, err
		}
	}

	cfg.shards, cfg.shardSize = n, size
	return &Pool{rts: rts, mask: uint64(n - 1), cfg: cfg, recovered: attached, recDur: durs}, nil
}

// --- routing --------------------------------------------------------------

// routeHash is the stable key→shard hash (ID routeHashID): FNV-1a 64 over
// the key, finalized with the murmur3 fmix64 mixer so the low bits used by
// the mask are well distributed even for short sequential keys. It is
// deliberately independent of any hash inside logfree: the index hash can
// evolve per runtime, routing cannot (entries live where the hash of their
// creation put them).
func routeHash(key []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, b := range key {
		h ^= uint64(b)
		h *= 1099511628211
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// shardOf routes a key to its shard index.
func (p *Pool) shardOf(key []byte) int { return int(routeHash(key) & p.mask) }

// ShardOf exposes the routing for tests and diagnostics.
func (p *Pool) ShardOf(key []byte) int { return p.shardOf(key) }

// --- pool surface ---------------------------------------------------------

// Shards reports the shard count.
func (p *Pool) Shards() int { return len(p.rts) }

// Runtimes exposes the per-shard runtimes (crash injection, stats; do not
// close them individually — Close the pool).
func (p *Pool) Runtimes() []*logfree.Runtime { return p.rts }

// Recovered reports whether Open attached to an existing pool (a manifest
// was present) rather than creating one. Memory-backed pools are always
// fresh.
func (p *Pool) Recovered() bool { return p.recovered }

// RecoveryStats aggregates the shards' recovery passes: counters sum;
// Duration is the slowest shard's pass, which is the pool's recovery wall
// clock since shards recover concurrently.
func (p *Pool) RecoveryStats() logfree.RecoveryStats {
	var agg logfree.RecoveryStats
	for _, rt := range p.rts {
		rs := rt.RecoveryStats()
		agg.ActiveAreas += rs.ActiveAreas
		agg.ObjectsChecked += rs.ObjectsChecked
		agg.Leaked += rs.Leaked
		if rs.Duration > agg.Duration {
			agg.Duration = rs.Duration
		}
	}
	return agg
}

// ShardRecoveryDurations returns each shard's open+recovery wall clock from
// the Open call (index = shard). The pool's total open time approaches
// max(durations) when shards truly recover in parallel and sum(durations)
// when something serializes them.
func (p *Pool) ShardRecoveryDurations() []time.Duration {
	out := make([]time.Duration, len(p.recDur))
	copy(out, p.recDur)
	return out
}

// AvailableBytes estimates free capacity as the MINIMUM across shards: keys
// hash-spread near-uniformly, so the fullest shard is where the next
// allocation failure happens — eviction policies should act on it, not on
// the pool-wide sum.
func (p *Pool) AvailableBytes() uint64 {
	min := ^uint64(0)
	for _, rt := range p.rts {
		if a := rt.AvailableBytes(); a < min {
			min = a
		}
	}
	return min
}

// SizeBytes sums the shards' committed device capacities: the pool's total
// formatted bytes. It increases through Grow and never decreases.
func (p *Pool) SizeBytes() uint64 {
	var sum uint64
	for _, rt := range p.rts {
		sum += rt.SizeBytes()
	}
	return sum
}

// MaxSizeBytes sums the shards' growth reserves: the largest total capacity
// Grow can reach. Equal to SizeBytes when the pool has no headroom.
func (p *Pool) MaxSizeBytes() uint64 {
	var sum uint64
	for _, rt := range p.rts {
		sum += rt.MaxSizeBytes()
	}
	return sum
}

// FreeBytes sums the shards' free capacity — the pool-wide total, unlike
// AvailableBytes' min-across-shards eviction signal.
func (p *Pool) FreeBytes() uint64 {
	var sum uint64
	for _, rt := range p.rts {
		sum += rt.FreeBytes()
	}
	return sum
}

// Grow extends the pool to total bytes: every shard grows (concurrently,
// crash-atomically, without interrupting operations) to its line-rounded
// 1/Nth share, then the manifest is rewritten with the new shard geometry.
// Requires WithMaxShardSize headroom. A no-op when total is at or below the
// current SizeBytes. A kill -9 anywhere leaves each shard at its old or new
// capacity and the manifest at the old or new geometry; the elastic reopen
// path adopts whichever committed, so recovery always sees a valid pool and
// re-running Grow reconverges the stragglers.
func (p *Pool) Grow(total uint64) error {
	if p.closed.Load() {
		return logfree.ErrClosed
	}
	p.growMu.Lock()
	defer p.growMu.Unlock()
	n := uint64(len(p.rts))
	per := (total + n - 1) / n
	per = (per + nvram.LineSize - 1) &^ uint64(nvram.LineSize-1)
	if per <= p.cfg.shardSize && p.SizeBytes() >= total {
		return nil
	}
	errs := make([]error, len(p.rts))
	var wg sync.WaitGroup
	for i, rt := range p.rts {
		wg.Add(1)
		go func(i int, rt *logfree.Runtime) {
			defer wg.Done()
			errs[i] = rt.Grow(per)
		}(i, rt)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("sharded: growing shard %d of %d: %w", i, len(p.rts), err)
		}
	}
	if p.cfg.dir != "" {
		if err := writeManifest(p.cfg.dir, manifest{
			Magic: manifestMagic, Version: manifestVersion,
			Shards: len(p.rts), ShardBytes: per, Hash: routeHashID,
			Backend: p.cfg.kind.String(),
		}); err != nil {
			return err
		}
	}
	if per > p.cfg.shardSize {
		p.cfg.shardSize = per
	}
	return nil
}

// Stats sums the shards' device counters. Requires quiescence (see
// nvram.Device.Stats).
func (p *Pool) Stats() nvram.Stats {
	var agg nvram.Stats
	for _, rt := range p.rts {
		st := rt.Device().Stats()
		agg.Clwbs += st.Clwbs
		agg.Fences += st.Fences
		agg.SyncWaits += st.SyncWaits
		agg.Evictions += st.Evictions
	}
	return agg
}

// Drain flushes deferred durability work on every shard. Requires
// quiescence.
func (p *Pool) Drain() {
	for _, rt := range p.rts {
		rt.Drain()
	}
}

// Reclaim converts recently retired memory into reusable slots on every
// shard (best effort; see Session.Reclaim).
func (p *Pool) Reclaim() {
	for _, rt := range p.rts {
		rt.Reclaim()
	}
}

// Close drains and closes every shard (file-backed shards flush their
// mappings synchronously, so afterwards the directory alone carries the
// pool). Requires quiescence. Idempotent. All shards are attempted; the
// first error is returned.
func (p *Pool) Close() error {
	if p.closed.Swap(true) {
		return nil
	}
	var first error
	for _, rt := range p.rts {
		if err := rt.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// SimulateCrash power-fails every shard (losing all unwritten-back state),
// reboots and recovers them concurrently, and returns the recovered pool.
// The receiver, its sessions and its structures are invalid afterwards.
// Works on both backends; for file-backed pools the on-disk crash path
// (process kill + reopen via Open) is the stronger test.
func (p *Pool) SimulateCrash() (*Pool, error) {
	p.closed.Store(true)
	n := len(p.rts)
	rts := make([]*logfree.Runtime, n)
	durs := make([]time.Duration, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i, rt := range p.rts {
		wg.Add(1)
		go func(i int, rt *logfree.Runtime) {
			defer wg.Done()
			start := time.Now()
			rts[i], errs[i] = rt.SimulateCrash()
			durs[i] = time.Since(start)
		}(i, rt)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			for _, rt := range rts {
				if rt != nil {
					rt.Close()
				}
			}
			return nil, fmt.Errorf("sharded: recovering shard %d: %w", i, err)
		}
	}
	return &Pool{rts: rts, mask: p.mask, cfg: p.cfg, recovered: true, recDur: durs}, nil
}

// --- sessions -------------------------------------------------------------

// PoolSession pins one session per shard, for tight loops that want to skip
// the per-operation session-pool round-trip on every shard they touch (see
// logfree.Session). Use via the structures' WithSession views; must only be
// used by one goroutine.
type PoolSession struct {
	ss []*logfree.Session
}

// Session acquires one pinned session per shard.
func (p *Pool) Session() (*PoolSession, error) {
	ss := make([]*logfree.Session, len(p.rts))
	for i, rt := range p.rts {
		s, err := rt.Session()
		if err != nil {
			for _, open := range ss[:i] {
				open.Close()
			}
			return nil, err
		}
		ss[i] = s
	}
	return &PoolSession{ss: ss}, nil
}

// Reclaim flushes deferred reclamation on every pinned session.
func (s *PoolSession) Reclaim() {
	for _, ses := range s.ss {
		ses.Reclaim()
	}
}

// Close returns every pinned session to its shard's pool. The PoolSession
// must not be used afterwards.
func (s *PoolSession) Close() {
	for _, ses := range s.ss {
		ses.Close()
	}
}
