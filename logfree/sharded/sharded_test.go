package sharded

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"
	"testing"

	"repro/internal/nvram"
	"repro/logfree"
)

const testShardSize = 8 << 20

func openMem(t *testing.T, shards int) *Pool {
	t.Helper()
	p, err := Open(WithShards(shards), WithShardSize(testShardSize))
	if err != nil {
		t.Fatalf("Open(mem, %d shards): %v", shards, err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

func openFile(t *testing.T, dir string, shards int) *Pool {
	t.Helper()
	p, err := Open(WithShards(shards), WithShardSize(testShardSize), WithDir(dir))
	if err != nil {
		t.Fatalf("Open(%s, %d shards): %v", dir, shards, err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

func tkey(i int) []byte { return fmt.Appendf(nil, "key-%05d", i) }
func tval(i int) []byte { return fmt.Appendf(nil, "val-%05d", i) }

// --- routing ---------------------------------------------------------------

func TestRoutingStableAcrossReopenAndBackends(t *testing.T) {
	dir := t.TempDir()
	fp := openFile(t, dir, 4)
	mp := openMem(t, 4)

	const n = 2000
	route := make([]int, n)
	for i := 0; i < n; i++ {
		route[i] = fp.ShardOf(tkey(i))
		if got := mp.ShardOf(tkey(i)); got != route[i] {
			t.Fatalf("key %d: file pool routes to shard %d, mem pool to %d", i, route[i], got)
		}
	}
	m, err := fp.Map("t", 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := m.Set(tkey(i), tval(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := fp.Close(); err != nil {
		t.Fatal(err)
	}

	fp2 := openFile(t, dir, 0) // adopt topology from the manifest
	if !fp2.Recovered() {
		t.Fatal("reopened pool does not report Recovered")
	}
	if fp2.Shards() != 4 {
		t.Fatalf("reopened pool has %d shards, want 4", fp2.Shards())
	}
	m2, err := fp2.Map("t", 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if got := fp2.ShardOf(tkey(i)); got != route[i] {
			t.Fatalf("key %d routed to shard %d before reopen, %d after", i, route[i], got)
		}
		// The real invariant: the entry is findable, i.e. it lives on the
		// shard routing points at.
		v, ok := m2.Get(tkey(i))
		if !ok || !bytes.Equal(v, tval(i)) {
			t.Fatalf("key %d: Get after reopen = %q, %v", i, v, ok)
		}
	}
}

func TestRoutingSpreadsKeys(t *testing.T) {
	p := openMem(t, 8)
	counts := make([]int, p.Shards())
	const n = 8192
	for i := 0; i < n; i++ {
		counts[p.ShardOf(tkey(i))]++
	}
	for s, c := range counts {
		// Mean is n/8 = 1024; demand every shard holds at least a quarter of
		// that, a very loose bound any decent hash clears by a mile.
		if c < n/8/4 {
			t.Fatalf("shard %d got only %d of %d sequential keys: %v", s, c, n, counts)
		}
	}
}

func TestDefaultShardCountIsPowerOfTwo(t *testing.T) {
	p, err := Open(WithShardSize(testShardSize))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	n := p.Shards()
	if n < 1 || n&(n-1) != 0 {
		t.Fatalf("default shard count %d is not a power of two", n)
	}
}

// --- manifest rejects ------------------------------------------------------

// TestManifestRejects mirrors the backend header-reject table in
// backend_conformance_test.go at pool level: every way a pool directory can
// disagree with the open request must fail up front with a diagnostic, and
// never silently reformat or mis-route.
func TestManifestRejects(t *testing.T) {
	man := func(magic string, version, shards int, shardBytes uint64, hash string) string {
		return fmt.Sprintf(`{"magic":%q,"version":%d,"shards":%d,"shard_bytes":%d,"hash":%q}`,
			magic, version, shards, shardBytes, hash)
	}
	cases := []struct {
		name    string
		mutate  func(t *testing.T, dir string)
		opts    []Option
		wantErr string
	}{
		{
			name:    "corrupt-json",
			mutate:  func(t *testing.T, dir string) { writeFileT(t, manifestPath(dir), "{") },
			wantErr: "corrupt pool manifest",
		},
		{
			name: "wrong-magic",
			mutate: func(t *testing.T, dir string) {
				writeFileT(t, manifestPath(dir), man("BOGUS", manifestVersion, 2, testShardSize, routeHashID))
			},
			wantErr: "not a pool manifest",
		},
		{
			name: "wrong-version",
			mutate: func(t *testing.T, dir string) {
				writeFileT(t, manifestPath(dir), man(manifestMagic, manifestVersion+1, 2, testShardSize, routeHashID))
			},
			wantErr: "layout version",
		},
		{
			name: "non-power-of-two-shards",
			mutate: func(t *testing.T, dir string) {
				writeFileT(t, manifestPath(dir), man(manifestMagic, manifestVersion, 3, testShardSize, routeHashID))
			},
			wantErr: "not a power of two",
		},
		{
			name: "zero-shards",
			mutate: func(t *testing.T, dir string) {
				writeFileT(t, manifestPath(dir), man(manifestMagic, manifestVersion, 0, testShardSize, routeHashID))
			},
			wantErr: "not a power of two",
		},
		{
			name: "zero-shard-bytes",
			mutate: func(t *testing.T, dir string) {
				writeFileT(t, manifestPath(dir), man(manifestMagic, manifestVersion, 2, 0, routeHashID))
			},
			wantErr: "shard capacity is zero",
		},
		{
			name: "routing-hash-mismatch",
			mutate: func(t *testing.T, dir string) {
				writeFileT(t, manifestPath(dir), man(manifestMagic, manifestVersion, 2, testShardSize, "xxhash-v9"))
			},
			wantErr: "routed by hash",
		},
		{
			name:    "shard-count-disagreement",
			mutate:  func(t *testing.T, dir string) {},
			opts:    []Option{WithShards(4)},
			wantErr: "formatted with 2 shards, requested 4",
		},
		{
			name:    "shard-size-disagreement",
			mutate:  func(t *testing.T, dir string) {},
			opts:    []Option{WithShardSize(testShardSize * 2)},
			wantErr: "formatted for",
		},
		{
			name: "missing-shard-file",
			mutate: func(t *testing.T, dir string) {
				if err := os.Remove(shardPath(dir, 1)); err != nil {
					t.Fatal(err)
				}
			},
			wantErr: "is missing",
		},
		{
			name: "shard-geometry-mismatch",
			mutate: func(t *testing.T, dir string) {
				// Manifest says a different (valid) capacity than the shard
				// files were formatted with: rejected by the shard's own
				// backend header check, surfaced as a shard-open failure.
				writeFileT(t, manifestPath(dir), man(manifestMagic, manifestVersion, 2, testShardSize*2, routeHashID))
			},
			wantErr: "opening shard 0 of 2",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			p, err := Open(WithShards(2), WithShardSize(testShardSize), WithDir(dir))
			if err != nil {
				t.Fatal(err)
			}
			if err := p.Close(); err != nil {
				t.Fatal(err)
			}
			tc.mutate(t, dir)
			p2, err := Open(append([]Option{WithDir(dir)}, tc.opts...)...)
			if err == nil {
				p2.Close()
				t.Fatalf("Open succeeded, want error containing %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Open error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}

func writeFileT(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestOpenFailureClosesOpenedShards is the error-path hygiene regression: if
// shard k fails to open, the shards that already opened must be closed again
// — their flocks released, their files openable — and after repairing the
// bad shard the pool must open with all its data intact.
func TestOpenFailureClosesOpenedShards(t *testing.T) {
	dir := t.TempDir()
	p := openFile(t, dir, 4)
	m, err := p.Map("t", 64)
	if err != nil {
		t.Fatal(err)
	}
	const n = 500
	for i := 0; i < n; i++ {
		if err := m.Set(tkey(i), tval(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	// Inject corruption: zero the backend magic of shard 2.
	bad := shardPath(dir, 2)
	orig := corruptHeaderWord(t, bad, 0, 0)

	_, err = Open(WithDir(dir))
	if err == nil {
		t.Fatal("Open succeeded on a pool with a corrupt shard file")
	}
	if !strings.Contains(err.Error(), "opening shard 2 of 4") {
		t.Fatalf("Open error %q does not name the corrupt shard", err)
	}

	// Shards 0 and 1 opened before 2 failed; if Open leaked them their
	// backing files would still be flocked and this direct open would fail
	// with "locked by another live process".
	fb, created, err := nvram.OpenFileBackend(shardPath(dir, 0), 0, 0)
	if err != nil {
		t.Fatalf("shard 0 backing file still locked after failed pool open: %v", err)
	}
	if created {
		t.Fatal("shard 0 was recreated, want attach to existing image")
	}
	if err := fb.Close(); err != nil {
		t.Fatal(err)
	}

	// Repair the header and the pool comes back whole.
	corruptHeaderWord(t, bad, 0, orig)
	p2 := openFile(t, dir, 0)
	m2, err := p2.Map("t", 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if v, ok := m2.Get(tkey(i)); !ok || !bytes.Equal(v, tval(i)) {
			t.Fatalf("key %d after repair: %q, %v", i, v, ok)
		}
	}
}

// corruptHeaderWord overwrites the uint64 at byte offset off of path and
// returns the previous value, for undoable corruption injection.
func corruptHeaderWord(t *testing.T, path string, off int64, v uint64) uint64 {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var buf [8]byte
	if _, err := f.ReadAt(buf[:], off); err != nil {
		t.Fatal(err)
	}
	prev := binary.LittleEndian.Uint64(buf[:])
	binary.LittleEndian.PutUint64(buf[:], v)
	if _, err := f.WriteAt(buf[:], off); err != nil {
		t.Fatal(err)
	}
	return prev
}

// --- surface ---------------------------------------------------------------

func TestShardedMapSurface(t *testing.T) {
	p := openMem(t, 4)
	m, err := p.Map("kv", 128)
	if err != nil {
		t.Fatal(err)
	}
	const n = 1000
	for i := 0; i < n; i++ {
		created, err := m.SetItem(tkey(i), tval(i), uint16(i), uint64(i)*3)
		if err != nil || !created {
			t.Fatalf("SetItem(%d) = %v, %v", i, created, err)
		}
	}
	if got := m.Len(); got != n {
		t.Fatalf("Len = %d, want %d", got, n)
	}
	for i := 0; i < n; i++ {
		v, meta, aux, ok := m.GetItem(tkey(i))
		if !ok || !bytes.Equal(v, tval(i)) || meta != uint16(i) || aux != uint64(i)*3 {
			t.Fatalf("GetItem(%d) = %q, %d, %d, %v", i, v, meta, aux, ok)
		}
	}
	if !m.SetAux(tkey(7), 99) {
		t.Fatal("SetAux on live key returned false")
	}
	if aux, ok := m.GetAux(tkey(7)); !ok || aux != 99 {
		t.Fatalf("GetAux = %d, %v", aux, ok)
	}
	seen := 0
	for k, v := range m.All() {
		if len(k) == 0 || len(v) == 0 {
			t.Fatal("All yielded empty key or value")
		}
		seen++
	}
	if seen != n {
		t.Fatalf("All yielded %d entries, want %d", seen, n)
	}
	seen = 0
	for _, it := range m.Items() {
		_ = it
		seen++
	}
	if seen != n {
		t.Fatalf("Items yielded %d entries, want %d", seen, n)
	}
	for i := 0; i < n; i += 2 {
		if !m.Delete(tkey(i)) {
			t.Fatalf("Delete(%d) = false", i)
		}
	}
	if got := m.Len(); got != n/2 {
		t.Fatalf("Len after deletes = %d, want %d", got, n/2)
	}
	if m.Contains(tkey(0)) || !m.Contains(tkey(1)) {
		t.Fatal("Contains disagrees with deletes")
	}
	if m.Kind() != logfree.KindMap || m.Name() != "kv" {
		t.Fatalf("Kind/Name = %v/%q", m.Kind(), m.Name())
	}
}

func TestOrderedMergeIterators(t *testing.T) {
	p := openMem(t, 4)
	om, err := p.OrderedMap("ord")
	if err != nil {
		t.Fatal(err)
	}
	const n = 1200
	perm := rand.New(rand.NewSource(1)).Perm(n)
	for _, i := range perm {
		if _, err := om.SetItem(tkey(i), tval(i), 0, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}

	// Full ascending scan: every key, strictly ascending, from all shards.
	i := 0
	for k, v := range om.All() {
		if !bytes.Equal(k, tkey(i)) || !bytes.Equal(v, tval(i)) {
			t.Fatalf("All[%d] = %q/%q, want %q/%q", i, k, v, tkey(i), tval(i))
		}
		i++
	}
	if i != n {
		t.Fatalf("All yielded %d keys, want %d", i, n)
	}

	// Bounded scan: [lo, hi).
	lo, hi := 100, 250
	i = lo
	for k := range om.Scan(tkey(lo), tkey(hi)) {
		if !bytes.Equal(k, tkey(i)) {
			t.Fatalf("Scan[%d] = %q, want %q", i, k, tkey(i))
		}
		i++
	}
	if i != hi {
		t.Fatalf("Scan stopped at %d, want %d", i, hi)
	}

	// ScanItems carries the aux word through the merge.
	i = lo
	for k, it := range om.ScanItems(tkey(lo), tkey(hi)) {
		if !bytes.Equal(k, tkey(i)) || it.Aux != uint64(i) {
			t.Fatalf("ScanItems[%d] = %q aux=%d", i, k, it.Aux)
		}
		i++
	}

	// Descend: strictly descending over everything.
	i = n - 1
	for k := range om.Descend() {
		if !bytes.Equal(k, tkey(i)) {
			t.Fatalf("Descend[%d] = %q, want %q", i, k, tkey(i))
		}
		i--
	}
	if i != -1 {
		t.Fatalf("Descend yielded %d keys, want %d", n-1-i, n)
	}

	// Early break must not wedge the per-shard cursors (deferred stops).
	count := 0
	for range om.Ascend() {
		count++
		if count == 10 {
			break
		}
	}

	if k, v, ok := om.Min(); !ok || !bytes.Equal(k, tkey(0)) || !bytes.Equal(v, tval(0)) {
		t.Fatalf("Min = %q/%q/%v", k, v, ok)
	}
	if k, _, ok := om.Max(); !ok || !bytes.Equal(k, tkey(n-1)) {
		t.Fatalf("Max = %q/%v", k, ok)
	}
	if om.Kind() != logfree.KindOrderedMap {
		t.Fatalf("Kind = %v", om.Kind())
	}
}

func TestShardedBatch(t *testing.T) {
	p := openMem(t, 4)
	m, err := p.Map("b", 64)
	if err != nil {
		t.Fatal(err)
	}
	b := m.Batch()
	const n = 600
	for i := 0; i < n; i++ {
		b.SetItem(tkey(i), tval(i), 1, uint64(i))
	}
	b.Delete(tkey(0)).Delete(tkey(1))
	if b.Len() != n+2 {
		t.Fatalf("Len = %d, want %d", b.Len(), n+2)
	}
	if err := b.Commit(); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Fatalf("Len after Commit = %d, want 0", b.Len())
	}
	if got := m.Len(); got != n-2 {
		t.Fatalf("map Len = %d, want %d", got, n-2)
	}
	for i := 2; i < n; i++ {
		if v, ok := m.Get(tkey(i)); !ok || !bytes.Equal(v, tval(i)) {
			t.Fatalf("key %d after batch: %q, %v", i, v, ok)
		}
	}

	// Reused batch, single-shard fast path: all ops on one shard.
	b.Reset()
	one := tkey(42)
	b.Set(one, []byte("x")).Set(one, []byte("y"))
	if err := b.Commit(); err != nil {
		t.Fatal(err)
	}
	if v, _ := m.Get(one); !bytes.Equal(v, []byte("y")) {
		t.Fatalf("last-writer-wins within a shard batch: got %q", v)
	}

	// Pool-wide op count holds the single-runtime cap.
	b.Reset()
	for i := 0; i <= logfree.MaxBatchOps; i++ {
		b.Set(tkey(i%n+10_000), []byte("v"))
	}
	err = b.Commit()
	if !errors.Is(err, logfree.ErrBatchTooLarge) {
		t.Fatalf("oversize Commit error = %v, want ErrBatchTooLarge", err)
	}
	if b.Len() != logfree.MaxBatchOps+1 {
		t.Fatalf("failed Commit dropped ops: Len = %d", b.Len())
	}
}

func TestPoolSessionViews(t *testing.T) {
	p := openMem(t, 2)
	m, err := p.Map("s", 64)
	if err != nil {
		t.Fatal(err)
	}
	om, err := p.OrderedMap("so")
	if err != nil {
		t.Fatal(err)
	}
	ps, err := p.Session()
	if err != nil {
		t.Fatal(err)
	}
	mv, ov := m.WithSession(ps), om.WithSession(ps)
	for i := 0; i < 200; i++ {
		if err := mv.Set(tkey(i), tval(i)); err != nil {
			t.Fatal(err)
		}
		if err := ov.Set(tkey(i), tval(i)); err != nil {
			t.Fatal(err)
		}
	}
	ps.Reclaim()
	ps.Close()
	// Plain views observe the pinned-session writes.
	for i := 0; i < 200; i++ {
		if _, ok := m.Get(tkey(i)); !ok {
			t.Fatalf("map key %d invisible outside the session view", i)
		}
		if _, ok := om.Get(tkey(i)); !ok {
			t.Fatalf("ordered key %d invisible outside the session view", i)
		}
	}
}

// --- crash torture ---------------------------------------------------------

func TestPoolCrashTortureMem(t *testing.T) {
	p := openMem(t, 4)
	om, err := p.OrderedMap("c")
	if err != nil {
		t.Fatal(err)
	}
	const n = 800
	for i := 0; i < n; i++ {
		if err := om.Set(tkey(i), tval(i)); err != nil {
			t.Fatal(err)
		}
	}
	b := om.Batch()
	for i := n; i < n+100; i++ {
		b.Set(tkey(i), tval(i))
	}
	if err := b.Commit(); err != nil {
		t.Fatal(err)
	}

	p2, err := p.SimulateCrash()
	if err != nil {
		t.Fatalf("SimulateCrash: %v", err)
	}
	defer p2.Close()
	if !p2.Recovered() {
		t.Fatal("crashed pool does not report Recovered")
	}
	om2, err := p2.OrderedMap("c")
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	for k, v := range om2.All() {
		if !bytes.Equal(k, tkey(i)) || !bytes.Equal(v, tval(i)) {
			t.Fatalf("post-crash All[%d] = %q/%q", i, k, v)
		}
		i++
	}
	if i != n+100 {
		t.Fatalf("post-crash pool holds %d keys, want %d", i, n+100)
	}
	if len(p2.ShardRecoveryDurations()) != 4 {
		t.Fatal("recovered pool lost its per-shard recovery durations")
	}
}

func TestPoolCrashTortureFile(t *testing.T) {
	dir := t.TempDir()
	p := openFile(t, dir, 4)
	om, err := p.OrderedMap("c")
	if err != nil {
		t.Fatal(err)
	}
	const n = 600
	for i := 0; i < n; i++ {
		if err := om.Set(tkey(i), tval(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Abrupt death: abandon every shard's mapping without Close — exactly
	// what kill -9 leaves behind — then recover the pool from the directory.
	for _, rt := range p.Runtimes() {
		if err := rt.Device().Backend().(*nvram.FileBackend).Abandon(); err != nil {
			t.Fatalf("Abandon: %v", err)
		}
	}

	p2 := openFile(t, dir, 0)
	if !p2.Recovered() {
		t.Fatal("reopened pool does not report Recovered")
	}
	rs := p2.RecoveryStats()
	if rs.ObjectsChecked == 0 {
		t.Fatal("aggregated RecoveryStats shows no objects checked")
	}
	om2, err := p2.OrderedMap("c")
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for k := range om2.All() {
		got = append(got, string(k))
	}
	if len(got) != n {
		t.Fatalf("recovered %d keys, want %d", len(got), n)
	}
	if !sort.StringsAreSorted(got) {
		t.Fatal("merged post-recovery scan is not sorted")
	}
}

func TestPoolStatsAndCapacity(t *testing.T) {
	p := openMem(t, 2)
	m, err := p.Map("st", 64)
	if err != nil {
		t.Fatal(err)
	}
	before := p.AvailableBytes()
	for i := 0; i < 300; i++ {
		if err := m.Set(tkey(i), tval(i)); err != nil {
			t.Fatal(err)
		}
	}
	p.Drain()
	if st := p.Stats(); st.Fences == 0 || st.Clwbs == 0 {
		t.Fatalf("summed device stats empty: %+v", st)
	}
	if after := p.AvailableBytes(); after >= before {
		t.Fatalf("AvailableBytes did not drop: %d -> %d", before, after)
	}
	p.Reclaim()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}
