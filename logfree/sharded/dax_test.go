package sharded

// DAX-backed pools: per-shard DAX devices under one directory, the manifest
// recording (and enforcing) the backend kind, and durability pass-through.

import (
	"strings"
	"testing"
	"time"

	"repro/logfree"
)

func TestDAXPoolOpenReopen(t *testing.T) {
	dir := t.TempDir()
	p, err := Open(WithShards(4), WithShardSize(testShardSize),
		WithDevice(logfree.DAXDevice(dir)), WithDurability(logfree.Strict()))
	if err != nil {
		t.Fatalf("Open(dax pool): %v", err)
	}
	m, err := p.Map("kv", 64)
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	for i := 0; i < n; i++ {
		if err := m.Set(tkey(i), tval(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen with the same spec: recovery, kind check, contents.
	p2, err := Open(WithDevice(logfree.DAXDevice(dir)), WithDurability(logfree.Strict()))
	if err != nil {
		t.Fatalf("reopen dax pool: %v", err)
	}
	defer p2.Close()
	if !p2.Recovered() {
		t.Fatal("dax pool reopen did not recover")
	}
	if p2.Shards() != 4 {
		t.Fatalf("reopen shards = %d, want 4", p2.Shards())
	}
	m2, err := p2.Map("kv", 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if v, ok := m2.Get(tkey(i)); !ok || string(v) != string(tval(i)) {
			t.Fatalf("key %d lost across dax pool reopen: %q, %v", i, v, ok)
		}
	}
}

// The manifest records the backend kind: a pool formatted on DAX shards
// refuses an explicit file-kind reopen (and vice versa), while an
// unspecified kind adopts whatever the manifest says.
func TestManifestBackendKindEnforced(t *testing.T) {
	dir := t.TempDir()
	p, err := Open(WithShards(2), WithShardSize(testShardSize),
		WithDevice(logfree.DAXDevice(dir)))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	if _, err := Open(WithDevice(logfree.FileDevice(dir))); err == nil ||
		!strings.Contains(err.Error(), "formatted on") {
		t.Fatalf("file-kind reopen of dax pool = %v, want formatted-on mismatch", err)
	}

	// And the mirror image: a file pool rejects a dax-kind reopen.
	fdir := t.TempDir()
	fp, err := Open(WithShards(2), WithShardSize(testShardSize),
		WithDevice(logfree.FileDevice(fdir)))
	if err != nil {
		t.Fatal(err)
	}
	if err := fp.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(WithDevice(logfree.DAXDevice(fdir))); err == nil ||
		!strings.Contains(err.Error(), "formatted on") {
		t.Fatalf("dax-kind reopen of file pool = %v, want formatted-on mismatch", err)
	}
	// Matching kind still opens.
	fp2, err := Open(WithDevice(logfree.FileDevice(fdir)))
	if err != nil {
		t.Fatalf("matching-kind reopen: %v", err)
	}
	fp2.Close()
}

// A buffered pool runs every shard's flush timer; acked writes older than
// the staleness bound survive SimulateCrash.
func TestDAXPoolBufferedCrash(t *testing.T) {
	dir := t.TempDir()
	const staleness = 5 * time.Millisecond
	p, err := Open(WithShards(2), WithShardSize(testShardSize),
		WithDevice(logfree.DAXDevice(dir)),
		WithDurability(logfree.Buffered(staleness)), WithLinkCache(true))
	if err != nil {
		t.Fatal(err)
	}
	m, err := p.Map("kv", 64)
	if err != nil {
		t.Fatal(err)
	}
	const n = 100
	for i := 0; i < n; i++ {
		if err := m.Set(tkey(i), tval(i)); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(20 * staleness)
	p2, err := p.SimulateCrash()
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	m2, err := p2.Map("kv", 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if v, ok := m2.Get(tkey(i)); !ok || string(v) != string(tval(i)) {
			t.Fatalf("acked write %d older than MaxStaleness lost: %q, %v", i, v, ok)
		}
	}
}
