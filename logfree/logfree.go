// Package logfree is the public API of the log-free durable data structure
// library — a Go reproduction of "Log-Free Concurrent Data Structures"
// (David, Dragojević, Guerraoui, Zablotchi; USENIX ATC 2018).
//
// A Runtime owns a simulated NVRAM device and its substrates (persistent
// allocator, NV-epochs reclamation, link cache). Durable structures are
// created under a name, registered in a durable directory, and re-opened by
// name after a crash:
//
//	rt, _ := logfree.New(logfree.Config{Size: 64 << 20, MaxThreads: 8})
//	h := rt.Handle(0)
//	users, _ := rt.CreateHashTable(h, "users", 1024)
//	users.Insert(h, 42, 1)
//
//	rt2, _ := rt.SimulateCrash() // power failure + reboot + recovery
//	users2, _ := rt2.OpenHashTable("users")
//	users2.Search(rt2.Handle(0), 42) // → 1, true
//
// Handles are per-goroutine operation contexts (thread id bound); a Handle
// must not be shared between goroutines.
package logfree

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/nvram"
)

// Key-space bounds re-exported from the core: user keys must lie in
// [MinKey, MaxKey].
const (
	MinKey = core.MinKey
	MaxKey = core.MaxKey
)

// Config parameterizes a Runtime.
type Config struct {
	// Size is the simulated NVRAM capacity in bytes.
	Size uint64
	// WriteLatency is the simulated NVRAM write latency (paper default
	// 125ns). Zero disables latency injection entirely.
	WriteLatency time.Duration
	// MaxThreads bounds concurrent handles. Default 1.
	MaxThreads int
	// LinkCache enables the §4 link cache for updates.
	LinkCache bool
	// Volatile strips durability (the Figure 7 baseline).
	Volatile bool
}

// Errors returned by the runtime.
var (
	ErrExists   = errors.New("logfree: a structure with that name already exists")
	ErrNotFound = errors.New("logfree: no structure with that name")
	ErrFull     = errors.New("logfree: structure directory full")
	ErrKind     = errors.New("logfree: structure has a different kind")
)

// Kind identifies a structure type in the durable directory.
type Kind uint8

// Structure kinds.
const (
	KindList Kind = iota + 1
	KindHashTable
	KindSkipList
	KindBST
	KindQueue
	KindStack
)

func (k Kind) String() string {
	switch k {
	case KindList:
		return "list"
	case KindHashTable:
		return "hashtable"
	case KindSkipList:
		return "skiplist"
	case KindBST:
		return "bst"
	case KindQueue:
		return "queue"
	case KindStack:
		return "stack"
	}
	return "unknown"
}

// Each directory entry occupies 4 root slots:
// [0] kind | aux<<8 (aux: hash-table bucket count)
// [1] name hash
// [2], [3] structure anchor addresses.
const slotsPerEntry = 4

// Runtime owns one device and its substrates.
type Runtime struct {
	dev   *nvram.Device
	store *core.Store
	cfg   Config

	recovered []RecoveryReport
}

// RecoveryReport describes one structure's recovery pass.
type RecoveryReport struct {
	Name     string // name hash in hex when the original name is unknown
	Kind     Kind
	Leaked   int
	Duration time.Duration
}

// Handle is a per-goroutine operation context.
type Handle struct {
	c *core.Ctx
}

// New creates a runtime on a fresh simulated NVRAM device.
func New(cfg Config) (*Runtime, error) {
	if cfg.MaxThreads <= 0 {
		cfg.MaxThreads = 1
	}
	dev := nvram.New(nvram.Config{Size: cfg.Size, WriteLatency: cfg.WriteLatency})
	store, err := core.NewStore(dev, core.Options{
		MaxThreads: cfg.MaxThreads,
		LinkCache:  cfg.LinkCache,
		Volatile:   cfg.Volatile,
	})
	if err != nil {
		return nil, err
	}
	return &Runtime{dev: dev, store: store, cfg: cfg}, nil
}

// Attach re-opens a runtime on a device that already holds a formatted pool
// (after a crash or image load) and recovers every registered structure.
func Attach(dev *nvram.Device, cfg Config) (*Runtime, error) {
	store, err := core.AttachStore(dev)
	if err != nil {
		return nil, err
	}
	r := &Runtime{dev: dev, store: store, cfg: cfg}
	r.recoverAll()
	return r, nil
}

// Load opens a runtime from an image file written by Save.
func Load(path string, cfg Config) (*Runtime, error) {
	dev, err := nvram.LoadImage(path, nvram.Config{WriteLatency: cfg.WriteLatency})
	if err != nil {
		return nil, err
	}
	return Attach(dev, cfg)
}

// Save flushes all deferred durability work and writes the persisted image
// to path. The caller must be quiescent.
func (r *Runtime) Save(path string) error {
	r.Drain()
	return r.dev.SaveImage(path)
}

// Drain flushes the link cache and reclaims retired memory across all
// handles. Requires quiescence.
func (r *Runtime) Drain() {
	for tid := 0; tid < r.cfg.MaxThreads; tid++ {
		if c := r.storeCtx(tid, false); c != nil {
			c.Shutdown()
		}
	}
}

// SimulateCrash power-fails the device (losing everything not written
// back), reboots, and recovers. The receiver and all its handles and
// structures are invalid afterwards; use the returned runtime.
func (r *Runtime) SimulateCrash() (*Runtime, error) {
	r.dev.Crash()
	return Attach(r.dev, r.cfg)
}

// Device exposes the underlying simulated device (stats, crash injection).
func (r *Runtime) Device() *nvram.Device { return r.dev }

// Store exposes the internal store for benchmarks and tests.
func (r *Runtime) Store() *core.Store { return r.store }

// RecoveryReports lists the per-structure recovery work done by Attach.
func (r *Runtime) RecoveryReports() []RecoveryReport { return r.recovered }

// Handle returns the operation context for thread tid (creating it on first
// use). A Handle must be used by one goroutine at a time.
func (r *Runtime) Handle(tid int) *Handle {
	return &Handle{c: r.storeCtx(tid, true)}
}

func (r *Runtime) storeCtx(tid int, create bool) *core.Ctx {
	if c := r.store.ExistingCtx(tid); c != nil || !create {
		return c
	}
	return r.store.CtxFor(tid)
}

func nameHash(name string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	if h == 0 {
		h = 1
	}
	return h
}

func (r *Runtime) entrySlot(name string) (idx int, free int) {
	h := nameHash(name)
	free = -1
	for i := core.RootUser; i+slotsPerEntry <= 64; i += slotsPerEntry {
		hdr := r.store.Root(i)
		if hdr == 0 {
			if free < 0 {
				free = i
			}
			continue
		}
		if r.store.Root(i+1) == h {
			return i, free
		}
	}
	return -1, free
}

func (r *Runtime) register(h *Handle, name string, kind Kind, aux uint64, a1, a2 uint64) error {
	idx, free := r.entrySlot(name)
	if idx >= 0 {
		return fmt.Errorf("%w: %q", ErrExists, name)
	}
	if free < 0 {
		return ErrFull
	}
	r.store.SetRoot(h.c, free+1, nameHash(name))
	r.store.SetRoot(h.c, free+2, a1)
	r.store.SetRoot(h.c, free+3, a2)
	r.store.SetRoot(h.c, free, uint64(kind)|aux<<8) // header last: commit point
	return nil
}

func (r *Runtime) lookup(name string, kind Kind) (aux, a1, a2 uint64, err error) {
	idx, _ := r.entrySlot(name)
	if idx < 0 {
		return 0, 0, 0, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	hdr := r.store.Root(idx)
	if Kind(hdr&0xFF) != kind {
		return 0, 0, 0, fmt.Errorf("%w: %q is a %v", ErrKind, name, Kind(hdr&0xFF))
	}
	return hdr >> 8, r.store.Root(idx + 2), r.store.Root(idx + 3), nil
}

// recoverAll runs the §5.5 recovery procedure for every registered
// structure.
func (r *Runtime) recoverAll() {
	par := r.cfg.MaxThreads
	for i := core.RootUser; i+slotsPerEntry <= 64; i += slotsPerEntry {
		hdr := r.store.Root(i)
		if hdr == 0 {
			continue
		}
		kind := Kind(hdr & 0xFF)
		a1, a2 := r.store.Root(i+2), r.store.Root(i+3)
		var stats core.RecoveryStats
		switch kind {
		case KindList:
			stats = core.RecoverList(r.store, core.AttachList(r.store, a1, a2), par)
		case KindHashTable:
			h := core.AttachHashTable(r.store, a1, int(hdr>>8), a2)
			stats = core.RecoverHashTable(r.store, h, par)
		case KindSkipList:
			stats = core.RecoverSkipList(r.store, core.AttachSkipList(r.store, a1, a2), par)
		case KindBST:
			stats = core.RecoverBST(r.store, core.AttachBST(r.store, a1, a2), par)
		case KindQueue:
			stats = core.RecoverQueue(r.store, core.AttachQueue(r.store, a1), par)
		case KindStack:
			stats = core.RecoverStack(r.store, core.AttachStack(r.store, a1), par)
		}
		r.recovered = append(r.recovered, RecoveryReport{
			Name:     fmt.Sprintf("%#x", r.store.Root(i+1)),
			Kind:     kind,
			Leaked:   stats.Leaked,
			Duration: stats.Duration,
		})
	}
}
