// Package logfree is the public API of the log-free durable data structure
// library — a Go reproduction of "Log-Free Concurrent Data Structures"
// (David, Dragojević, Guerraoui, Zablotchi; USENIX ATC 2018).
//
// A Runtime owns a simulated NVRAM device and its substrates (persistent
// allocator, NV-epochs reclamation, link cache). Durable structures are
// created under a name in a durable directory — itself a log-free durable
// hash table, so the namespace grows without bound — and re-opened by name
// after a crash:
//
//	rt, _ := logfree.New(logfree.WithSize(64 << 20))
//	users, _ := rt.OpenOrCreate("users", logfree.Spec{})
//	users.Set([]byte("alice"), []byte(`{"plan":"pro"}`))
//
//	rt2, _ := rt.SimulateCrash() // power failure + reboot + recovery
//	users2, _ := rt2.OpenOrCreate("users", logfree.Spec{})
//	users2.Get([]byte("alice")) // → the value, true
//
// Threading (v3): there are no per-thread handles. Every method of every
// structure is safe to call from any goroutine — each operation draws an
// operation context from the runtime's lock-free session pool, which grows
// on demand past any formatted thread count. Advanced callers can pin a
// Session (Runtime.Session + the structures' WithSession views) to amortize
// the pool round-trip in tight loops; the deprecated Handle(tid) remains as
// a thin shim over pinned sessions.
//
// Batching (v3): m.Batch() collects Set/SetItem/Delete operations and
// Commit applies them with one shared content fence before the per-op
// publishing links, so N writes pay ~N+1 NVRAM sync waits instead of 2N.
// Batches are crash-atomic per op with prefix semantics, not transactional.
//
// Iteration (v3): All, Items, Scan, Ascend and Descend return Go
// range-over-func iterators (iter.Seq2); the reclamation epoch section is
// held across the whole loop, so iteration is safe against concurrent
// updates (no snapshot semantics), and loop bodies may freely call other
// operations — those draw their own sessions.
package logfree

import (
	"encoding/binary"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/nvram"
)

// Key-space bounds re-exported from the core: uint64 user keys must lie in
// [MinKey, MaxKey].
const (
	MinKey = core.MinKey
	MaxKey = core.MaxKey
)

// config collects the options of a Runtime.
type config struct {
	size         uint64 // 0 = default (fresh devices) or adopt (file/backend)
	maxSize      uint64 // growth reserve; 0 = frozen at size
	writeLatency time.Duration
	maxThreads   int
	areaShift    uint
	linkCache    bool // as requested; see effectiveLinkCache
	volatile     bool
	device       DeviceSpec
	durability   Durability
	// Provenance of the deprecated per-flag device options, kept so their
	// historical conflict diagnostics survive the WithDevice redesign.
	fileOpt, backendOpt bool
}

// defaultSize is the simulated NVRAM capacity when none is configured.
const defaultSize = 64 << 20

// Option configures a Runtime (functional options; replaces the v1 Config
// struct).
type Option func(*config)

// WithSize sets the simulated NVRAM capacity in bytes (default 64 MiB).
// With WithFile it sizes a newly created backing file; reopening an
// existing file adopts the file's formatted capacity, and an explicit
// WithSize that disagrees with it is an error.
func WithSize(bytes uint64) Option { return func(c *config) { c.size = bytes } }

// WithMaxSize reserves growth headroom: the runtime starts at WithSize
// bytes but can Grow online up to this many. With WithFile, reopening an
// existing file ADOPTS its formatted capacity (whatever the last durable
// grow reached) instead of erroring on a WithSize disagreement — an elastic
// pool's size is state, not configuration. Zero freezes the capacity at
// WithSize, exactly the pre-growth behaviour.
func WithMaxSize(bytes uint64) Option { return func(c *config) { c.maxSize = bytes } }

// WithDevice names the persistence substrate of the runtime — see
// DeviceSpec (MemDevice, FileDevice, DAXDevice, BackendDevice). For durable
// substrates New opens-or-creates: an image holding a formatted pool is
// recovered (Recovered reports true), anything else is formatted fresh.
// SaveImage/LoadImage keep working as portable snapshots. Mutually
// exclusive with WithVolatile (except MemDevice).
func WithDevice(spec DeviceSpec) Option { return func(c *config) { c.device = spec } }

// WithDurability sets the policy for what an acknowledged operation means
// on the configured device — see Durability (Strict, Synced, Buffered).
// The default is Synced.
func WithDurability(d Durability) Option { return func(c *config) { c.durability = d } }

// WithFile backs the persisted image with an mmap'd file at path.
//
// Deprecated: use WithDevice(FileDevice(path)).
func WithFile(path string) Option {
	return func(c *config) { c.device = FileDevice(path); c.fileOpt = path != "" }
}

// WithFileSync(true) makes acknowledged operations machine-crash durable.
//
// Deprecated: use WithDurability(Strict()). WithFileSync(false) is a no-op
// (the default policy is already Synced), so conditional call sites compose
// with WithDurability.
func WithFileSync(strict bool) Option {
	return func(c *config) {
		if strict {
			c.durability = Strict()
		}
	}
}

// WithBackend runs the runtime on a caller-constructed persistence backend.
//
// Deprecated: use WithDevice(BackendDevice(b)).
func WithBackend(b nvram.Backend) Option {
	return func(c *config) { c.device = BackendDevice(b); c.backendOpt = b != nil }
}

// WithWriteLatency sets the simulated NVRAM write latency (paper default
// 125ns via nvram.DefaultWriteLatency). Zero disables latency injection.
func WithWriteLatency(d time.Duration) Option { return func(c *config) { c.writeLatency = d } }

// WithMaxThreads sizes the formatted per-thread region of the durable active
// page table (default 1; on Attach, the pool's formatted thread count). It
// is no longer a cap: the session pool grows past it on demand, each extra
// session backed by its own durable APT bank — pre-sizing just packs the
// expected steady-state concurrency into one region.
func WithMaxThreads(n int) Option { return func(c *config) { c.maxThreads = n } }

// WithLinkCache toggles the §4 link cache for updates.
func WithLinkCache(on bool) Option { return func(c *config) { c.linkCache = on } }

// WithAreaShift sets log2 of the NV-epochs active-area granularity (§5.4).
// The runtime default is 16 (64KB areas): a production working set spans
// few areas, so the active page table almost never misses — at the cost of
// a proportionally larger recovery sweep per table entry. The paper's
// evaluation granularity (4KB pages, as in internal/bench) is shift 12.
func WithAreaShift(shift uint) Option { return func(c *config) { c.areaShift = shift } }

// WithVolatile strips durability (the Figure 7 baseline).
func WithVolatile(on bool) Option { return func(c *config) { c.volatile = on } }

func buildConfig(opts []Option) config {
	c := config{areaShift: 16}
	for _, o := range opts {
		o(&c)
	}
	if c.maxThreads < 0 {
		c.maxThreads = 0
	}
	return c
}

// openDevice builds the NVRAM device the DeviceSpec names and threads the
// durability policy into its backend.
func (c *config) openDevice() (*nvram.Device, error) {
	ncfg := nvram.Config{WriteLatency: c.writeLatency, MaxSize: c.maxSize}
	spec := c.device
	switch {
	case c.fileOpt && c.backendOpt:
		return nil, fmt.Errorf("logfree: WithBackend and WithFile are mutually exclusive")
	case c.volatile && spec.Kind != DeviceMem:
		return nil, fmt.Errorf("logfree: WithVolatile strips the write-backs a durable backend exists to capture")
	}
	switch spec.Kind {
	case DeviceBackend:
		if spec.Backend == nil {
			return nil, fmt.Errorf("logfree: BackendDevice with a nil backend")
		}
		ncfg.Size = c.size // 0 adopts the backend's capacity
		if ps, ok := spec.Backend.(syncPolicySetter); ok {
			ps.SetSyncPolicy(c.durability.syncPolicy())
		}
		return nvram.NewWithBackend(ncfg, spec.Backend)
	case DeviceFile, DeviceDAX:
		ncfg.Size = c.size
		if st, err := os.Stat(spec.Path); (err != nil || st.Size() == 0) && ncfg.Size == 0 {
			ncfg.Size = defaultSize // creating fresh with no explicit size
		}
		var (
			dev *nvram.Device
			err error
		)
		if spec.Kind == DeviceDAX {
			dev, _, err = nvram.OpenDAXDevice(spec.Path, ncfg)
		} else {
			dev, _, err = nvram.OpenFileDevice(spec.Path, ncfg)
		}
		if err != nil {
			return nil, err
		}
		if ps, ok := dev.Backend().(syncPolicySetter); ok {
			ps.SetSyncPolicy(c.durability.syncPolicy())
		}
		return dev, nil
	default:
		ncfg.Size = c.size
		if ncfg.Size == 0 {
			ncfg.Size = defaultSize
		}
		return nvram.New(ncfg), nil
	}
}

// effectiveLinkCache derives the link-cache legality from the device and
// policy: on durable substrates a volatile cache of publishing links would
// silently void the acknowledged-operation contract, so it is only honored
// when the policy already accepts bounded staleness (Buffered) — whose
// background timer then also bounds the cache's exposure. Mem and volatile
// runtimes keep the request as-is.
func (c *config) effectiveLinkCache() bool {
	if !c.linkCache {
		return false
	}
	if c.volatile || c.device.Kind == DeviceMem {
		return true
	}
	return c.durability.IsBuffered()
}

// Kind identifies a structure type in the durable directory.
type Kind uint8

// Structure kinds.
const (
	KindList Kind = iota + 1
	KindHashTable
	KindSkipList
	KindBST
	KindQueue
	KindStack
	// KindMap is the byte-keyed durable hash map (arbitrary []byte keys and
	// values; the default Spec kind).
	KindMap
	// KindOrderedMap is the byte-keyed ordered durable map (arbitrary
	// []byte keys and values over a byte-key-comparing durable skip list):
	// everything KindMap offers plus range scans, ordered iteration and
	// Min/Max. OpenOrCreate returns a Map that also satisfies OrderedMap.
	KindOrderedMap
)

func (k Kind) String() string {
	switch k {
	case KindList:
		return "list"
	case KindHashTable:
		return "hashtable"
	case KindSkipList:
		return "skiplist"
	case KindBST:
		return "bst"
	case KindQueue:
		return "queue"
	case KindStack:
		return "stack"
	case KindMap:
		return "map"
	case KindOrderedMap:
		return "orderedmap"
	}
	return "unknown"
}

// Root slots anchoring the durable directory. The directory is a BytesMap
// (name → encoded descriptor); everything else lives inside it.
const (
	rootDirBuckets = core.RootUser + 0
	rootDirTail    = core.RootUser + 1
	rootDirNBkts   = core.RootUser + 2 // written last: directory commit point

	dirBuckets = 64
)

// RecoveryStats aggregates one recovery pass (alias of the core type so
// callers never need the internal packages).
type RecoveryStats = core.RecoveryStats

// Runtime owns one device and its substrates.
type Runtime struct {
	dev   *nvram.Device
	store *core.Store
	cfg   config
	pool  *sessionPool

	closed   atomic.Bool
	attached bool // true when Attach recovered an existing image
	handleMu sync.Mutex
	handles  map[int]*Session // Handle(tid) shim sessions, by tid

	// Buffered-policy link-cache flush timer (startFlushTimer).
	flushStop chan struct{}
	flushDone chan struct{}

	dir   *core.BytesMap
	dirMu sync.Mutex // serializes registrations (rare)

	recovered []RecoveryReport
	recStats  RecoveryStats
}

// RecoveryReport names one structure recovered by Attach. Leak statistics
// are aggregated across the whole pass (all structures share one sweep of
// the active areas); see RecoveryStats.
type RecoveryReport struct {
	Name string
	Kind Kind
}

// New creates a runtime. On the default in-process backend the device is
// always fresh; with WithFile or WithBackend, a persisted image that
// already holds a formatted pool is recovered instead of destroyed
// (open-or-create — Recovered reports which path ran).
func New(opts ...Option) (*Runtime, error) {
	cfg := buildConfig(opts)
	dev, err := cfg.openDevice()
	if err != nil {
		return nil, err
	}
	var r *Runtime
	if core.PoolFormatted(dev) {
		r, err = attachRuntime(dev, cfg)
	} else {
		r, err = createRuntime(dev, cfg)
	}
	if err != nil {
		// Release the backend (file mapping + descriptor + owner lock):
		// a supervisor retrying a failing open must not leak one mapping
		// per attempt.
		dev.Close()
		return nil, err
	}
	return r, nil
}

// createRuntime formats dev and initializes a fresh runtime on it.
func createRuntime(dev *nvram.Device, cfg config) (*Runtime, error) {
	if cfg.maxThreads == 0 {
		cfg.maxThreads = 1
	}
	store, err := core.NewStore(dev, core.Options{
		MaxThreads: cfg.maxThreads,
		LinkCache:  cfg.effectiveLinkCache(),
		AreaShift:  cfg.areaShift,
		Volatile:   cfg.volatile,
	})
	if err != nil {
		return nil, err
	}
	r := &Runtime{dev: dev, store: store, cfg: cfg, pool: newSessionPool(store)}
	if err := r.createDirectory(); err != nil {
		return nil, err
	}
	r.seedPool()
	r.startFlushTimer()
	return r, nil
}

// seedPool hands every core context registered so far to the session pool
// so they serve operations instead of idling: the directory-setup context
// after New, and all the recovery-pass contexts (tids 0..par-1, quiescent
// once Attach returns) after Attach — otherwise the pool would carve fresh
// durable APT banks while formatted thread slots sit unused.
func (r *Runtime) seedPool() {
	r.store.CtxFor(0) // ensure at least one context exists (fresh Attach path)
	r.store.ForEachCtx(func(c *core.Ctx) {
		s := &Session{rt: r, c: c}
		r.pool.register(s)
		r.pool.push(s)
	})
}

// createDirectory formats the durable directory and commits its anchor
// roots (bucket count last, as the commit point).
func (r *Runtime) createDirectory() error {
	c := r.store.CtxFor(0)
	dir, err := core.NewBytesMap(c, dirBuckets)
	if err != nil {
		return err
	}
	r.store.SetRoot(c, rootDirBuckets, dir.Buckets())
	r.store.SetRoot(c, rootDirTail, dir.Tail())
	r.store.SetRoot(c, rootDirNBkts, uint64(dir.NumBuckets()))
	r.dir = dir
	return nil
}

// Attach re-opens a runtime on a device that already holds a formatted pool
// (after a crash or image load): the directory is recovered first, then
// every structure it lists, in one combined sweep of the active areas.
func Attach(dev *nvram.Device, opts ...Option) (*Runtime, error) {
	return attachRuntime(dev, buildConfig(opts))
}

func attachRuntime(dev *nvram.Device, cfg config) (*Runtime, error) {
	store, err := core.AttachStore(dev)
	if err != nil {
		return nil, err
	}
	if cfg.maxThreads == 0 {
		cfg.maxThreads = store.Options().MaxThreads
	}
	r := &Runtime{dev: dev, store: store, cfg: cfg, pool: newSessionPool(store)}
	if nb := store.Root(rootDirNBkts); nb == 0 {
		// The pool was formatted but crashed before the directory committed:
		// no structure can have been registered, so start one fresh.
		if err := r.createDirectory(); err != nil {
			return nil, err
		}
		r.seedPool()
		r.startFlushTimer()
		return r, nil
	}
	r.dir = core.AttachBytesMap(store,
		store.Root(rootDirBuckets), int(store.Root(rootDirNBkts)), store.Root(rootDirTail))
	r.recoverAll()
	r.attached = true
	r.seedPool()
	r.startFlushTimer()
	return r, nil
}

// startFlushTimer runs the Buffered-policy background flusher: every
// MaxStaleness it pushes the link cache's volatile publishing links into
// the persisted image (the pool's formatted LinkCache option decides
// whether the cache exists at all — relevant on Attach, where formatting
// wins over this process's request). Together with the file syncer's
// buffered batches this bounds how much acknowledged work any crash can
// take back.
func (r *Runtime) startFlushTimer() {
	lc := r.store.LinkCache()
	if lc == nil || !r.cfg.durability.IsBuffered() {
		return
	}
	r.flushStop = make(chan struct{})
	r.flushDone = make(chan struct{})
	tick := time.NewTicker(r.cfg.durability.MaxStaleness())
	go func() {
		defer close(r.flushDone)
		defer tick.Stop()
		for {
			select {
			case <-r.flushStop:
				return
			case <-tick.C:
			}
			if r.closed.Load() {
				return
			}
			s, err := r.Session()
			if err != nil {
				return
			}
			lc.FlushAll(s.c.Flusher())
			s.c.Flusher().Fence()
			s.Close()
		}
	}()
}

// stopFlushTimer joins the Buffered flusher (idempotent; no-op when the
// timer never started).
func (r *Runtime) stopFlushTimer() {
	if r.flushStop == nil {
		return
	}
	close(r.flushStop)
	<-r.flushDone
	r.flushStop = nil
}

// Load opens a runtime from an image file written by Save.
func Load(path string, opts ...Option) (*Runtime, error) {
	cfg := buildConfig(opts)
	dev, err := nvram.LoadImage(path, nvram.Config{WriteLatency: cfg.writeLatency})
	if err != nil {
		return nil, err
	}
	return Attach(dev, opts...)
}

// Save flushes all deferred durability work and writes the persisted image
// to path. The caller must be quiescent.
func (r *Runtime) Save(path string) error {
	r.Drain()
	return r.dev.SaveImage(path)
}

// Drain flushes the link cache and reclaims retired memory across all
// sessions. Requires quiescence.
func (r *Runtime) Drain() {
	r.store.ForEachCtx(func(c *core.Ctx) { c.Shutdown() })
}

// Reclaim runs one epoch-reclamation pass over memory retired by any
// session of this runtime, freeing what every thread has provably moved
// past. Handy for tests and quiescent maintenance; regular operation
// reclaims incrementally on its own.
func (r *Runtime) Reclaim() {
	if s, err := r.Session(); err == nil {
		s.Reclaim()
		s.Close()
	}
}

// Close drains the runtime, marks it closed (subsequent operations return
// or panic with ErrClosed) and releases the device backend — for
// file-backed runtimes that synchronously flushes the mapping, so after
// Close the backing file alone carries the state. Requires quiescence.
// Idempotent.
func (r *Runtime) Close() error {
	if r.closed.Swap(true) {
		return nil
	}
	r.stopFlushTimer()
	r.Drain()
	return r.dev.Close()
}

// Recovered reports whether this runtime attached to an existing formatted
// image (New on a populated WithFile/WithBackend device, Attach, Load)
// rather than formatting a fresh pool.
func (r *Runtime) Recovered() bool { return r.attached }

// SimulateCrash power-fails the device (losing everything not written
// back), reboots, and recovers. The receiver and all its sessions and
// structures are invalid afterwards (it is closed); use the returned
// runtime.
func (r *Runtime) SimulateCrash() (*Runtime, error) {
	r.closed.Store(true)
	r.stopFlushTimer()
	r.dev.Crash()
	return Attach(r.dev,
		WithSize(r.cfg.size),
		WithMaxSize(r.cfg.maxSize),
		WithWriteLatency(r.cfg.writeLatency),
		WithMaxThreads(r.cfg.maxThreads),
		WithLinkCache(r.cfg.linkCache),
		WithDevice(r.cfg.device),
		WithDurability(r.cfg.durability),
		WithVolatile(r.cfg.volatile))
}

// Device exposes the underlying simulated device (stats, crash injection).
func (r *Runtime) Device() *nvram.Device { return r.dev }

// Store exposes the internal store for benchmarks and tests.
func (r *Runtime) Store() *core.Store { return r.store }

// AvailableBytes estimates the free NVRAM capacity (uncarved space plus
// recycled pages). Callers implementing eviction policies poll it.
func (r *Runtime) AvailableBytes() uint64 { return r.store.Pool().AvailableBytes() }

// FreeBytes is AvailableBytes under the name the capacity-stats surface
// uses across runtimes and sharded pools.
func (r *Runtime) FreeBytes() uint64 { return r.AvailableBytes() }

// SizeBytes returns the committed device capacity in bytes. It increases
// through Grow and never decreases.
func (r *Runtime) SizeBytes() uint64 { return r.dev.Size() }

// MaxSizeBytes returns the growth reserve: the largest capacity Grow can
// reach. Equal to SizeBytes when the runtime has no headroom.
func (r *Runtime) MaxSizeBytes() uint64 { return r.dev.Reserve() }

// Grow extends the runtime's device and allocator to total bytes,
// crash-atomically and with no interruption to concurrent operations
// (requires WithMaxSize headroom, or a growable backend with reserve). A
// no-op when total is at or below the current size. A kill -9 at any point
// during a grow recovers to exactly the old or the new capacity.
func (r *Runtime) Grow(total uint64) error {
	if r.closed.Load() {
		return ErrClosed
	}
	return r.store.Pool().Grow(total)
}

// RecoveryReports lists the structures recovered by Attach.
func (r *Runtime) RecoveryReports() []RecoveryReport { return r.recovered }

// RecoveryStats aggregates the recovery pass Attach ran (zero after New).
func (r *Runtime) RecoveryStats() RecoveryStats { return r.recStats }

// --- Durable directory ---------------------------------------------------

// Directory entries are BytesMap entries: key = structure name, value =
// three little-endian words: kind|aux<<8, anchor1, anchor2 (aux carries the
// bucket count for hash-backed kinds).
const dirEntryLen = 24

func encodeDirEntry(kind Kind, aux, a1, a2 uint64) []byte {
	var v [dirEntryLen]byte
	binary.LittleEndian.PutUint64(v[0:], uint64(kind)|aux<<8)
	binary.LittleEndian.PutUint64(v[8:], a1)
	binary.LittleEndian.PutUint64(v[16:], a2)
	return v[:]
}

func decodeDirEntry(v []byte) (kind Kind, aux, a1, a2 uint64, ok bool) {
	if len(v) != dirEntryLen {
		return 0, 0, 0, 0, false
	}
	w0 := binary.LittleEndian.Uint64(v[0:])
	return Kind(w0 & 0xFF), w0 >> 8,
		binary.LittleEndian.Uint64(v[8:]), binary.LittleEndian.Uint64(v[16:]), true
}

// Lookup reports whether a structure named name is registered, and its
// kind.
func (r *Runtime) Lookup(name string) (Kind, bool) {
	s := r.acquire()
	defer r.release(s)
	v, ok := r.dir.Get(s.c, []byte(name))
	if !ok {
		return 0, false
	}
	kind, _, _, _, ok := decodeDirEntry(v)
	return kind, ok
}

// Names lists every registered structure name (quiescent use).
func (r *Runtime) Names() []string {
	s := r.acquire()
	defer r.release(s)
	var out []string
	r.dir.Range(s.c, func(k, _ []byte) bool {
		out = append(out, string(k))
		return true
	})
	return out
}

// ensure looks name up under the registration lock and, when absent, runs
// create and registers its descriptor. It returns the entry either way.
func (r *Runtime) ensure(c *core.Ctx, name string, kind Kind,
	create func() (aux, a1, a2 uint64, err error)) (aux, a1, a2 uint64, err error) {
	if name == "" {
		return 0, 0, 0, fmt.Errorf("logfree: empty structure name")
	}
	r.dirMu.Lock()
	defer r.dirMu.Unlock()
	if v, ok := r.dir.Get(c, []byte(name)); ok {
		k, aux, a1, a2, ok := decodeDirEntry(v)
		if !ok {
			return 0, 0, 0, fmt.Errorf("logfree: corrupt directory entry for %q", name)
		}
		if k != kind {
			return 0, 0, 0, fmt.Errorf("%w: %q is a %v, not a %v", ErrKindMismatch, name, k, kind)
		}
		return aux, a1, a2, nil
	}
	aux, a1, a2, err = create()
	if err != nil {
		return 0, 0, 0, err
	}
	if _, err := r.dir.Set(c, []byte(name), encodeDirEntry(kind, aux, a1, a2), 0, 0); err != nil {
		return 0, 0, 0, err
	}
	// Registration is a durable commit point (v1 synced root slots directly;
	// v2 must match): flush any link-cache entry still covering the
	// directory update before returning the structure to the caller.
	if lc := r.store.LinkCache(); lc != nil {
		lc.FlushAll(c.Flusher())
		c.Flusher().Fence()
	}
	return aux, a1, a2, nil
}

// recoverAll runs the §5.5 recovery procedure once for the directory plus
// every structure it lists: a single combined sweep of the active areas, so
// no structure's sweep can mistake a sibling's nodes for leaks.
func (r *Runtime) recoverAll() {
	c := r.store.CtxFor(0)
	rs := []core.Recoverer{r.dir.Recoverer()}
	r.recovered = nil
	r.dir.Range(c, func(name, v []byte) bool {
		kind, aux, a1, a2, ok := decodeDirEntry(v)
		if !ok {
			return true
		}
		switch kind {
		case KindList:
			rs = append(rs, core.AttachList(r.store, a1, a2).Recoverer())
		case KindHashTable:
			rs = append(rs, core.AttachHashTable(r.store, a1, int(aux), a2).Recoverer())
		case KindSkipList:
			rs = append(rs, core.AttachSkipList(r.store, a1, a2).Recoverer())
		case KindBST:
			rs = append(rs, core.AttachBST(r.store, a1, a2).Recoverer())
		case KindQueue:
			rs = append(rs, core.AttachQueue(r.store, a1).Recoverer())
		case KindStack:
			rs = append(rs, core.AttachStack(r.store, a1).Recoverer())
		case KindMap:
			rs = append(rs, core.AttachBytesMap(r.store, a1, int(aux), a2).Recoverer())
		case KindOrderedMap:
			rs = append(rs, core.AttachOrderedBytesMap(r.store, a1, a2).Recoverer())
		default:
			return true
		}
		r.recovered = append(r.recovered, RecoveryReport{Name: string(name), Kind: kind})
		return true
	})
	r.recStats = core.RecoverSet(r.store, rs, r.cfg.maxThreads)
}

// Byte-map entry geometry re-exported from the core: an entry (header +
// key + value) must fit the largest slab class.
const (
	// MaxMapKeyLen bounds ByteMap key length.
	MaxMapKeyLen = core.MaxBytesKeyLen
	// MapEntryOverhead is the per-entry durable header size.
	MapEntryOverhead = core.BytesEntryOverhead
	// MaxMapEntrySize is the largest storable entry (header + key + value).
	MaxMapEntrySize = core.MaxBytesEntrySize
)
