package logfree_test

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/logfree"
)

// TestBatchCommitSemantics: Commit equals the ops applied in order
// (including a batch overwriting and deleting its own keys), copies buffered
// bytes, resets on success, and works on every Map kind (u64 kinds apply
// unamortized).
func TestBatchCommitSemantics(t *testing.T) {
	rt, err := logfree.New(logfree.WithSize(64 << 20))
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []logfree.Kind{logfree.KindMap, logfree.KindOrderedMap} {
		t.Run(kind.String(), func(t *testing.T) {
			m, err := rt.OpenOrCreate("batch-"+kind.String(), logfree.Spec{Kind: kind})
			if err != nil {
				t.Fatal(err)
			}
			b := m.Batch()
			keyBuf := []byte("k-reused")
			b.Set(keyBuf, []byte("first"))
			keyBuf[2] = 'X' // buffered bytes must have been copied
			b.Set([]byte("a"), []byte("1")).
				Set([]byte("b"), []byte("2")).
				Set([]byte("a"), []byte("1-again")).
				Delete([]byte("b")).
				SetItem([]byte("c"), []byte("3"), 7, 99)
			if b.Len() != 6 {
				t.Fatalf("Len = %d", b.Len())
			}
			if err := b.Commit(); err != nil {
				t.Fatal(err)
			}
			if b.Len() != 0 {
				t.Fatalf("batch not reset after Commit: %d", b.Len())
			}
			for key, want := range map[string]string{
				"k-reused": "first", "a": "1-again", "c": "3",
			} {
				if v, ok := m.Get([]byte(key)); !ok || string(v) != want {
					t.Fatalf("%q = %q,%v want %q", key, v, ok, want)
				}
			}
			if m.Contains([]byte("b")) {
				t.Fatal("in-batch delete lost")
			}
			if m.Len() != 3 {
				t.Fatalf("Len = %d", m.Len())
			}
		})
	}
	// u64 plane: Batch applies sequentially; argument errors surface.
	u, err := rt.OpenOrCreate("batch-u64", logfree.Spec{Kind: logfree.KindSkipList})
	if err != nil {
		t.Fatal(err)
	}
	if err := u.Batch().Set(u64key(9), u64key(90)).Commit(); err != nil {
		t.Fatal(err)
	}
	if v, ok := u.Get(u64key(9)); !ok || !bytes.Equal(v, u64key(90)) {
		t.Fatalf("u64 batch Get = %q,%v", v, ok)
	}
	if err := u.Batch().Set([]byte("bad"), u64key(1)).Commit(); !errors.Is(err, logfree.ErrKeyRange) {
		t.Fatalf("u64 batch bad key: %v", err)
	}
	// uint64 entries store no meta/aux: a batch must reject them rather
	// than drop them silently.
	if err := u.Batch().SetItem(u64key(9), u64key(90), 7, 0).Commit(); !errors.Is(err, logfree.ErrNoItemMeta) {
		t.Fatalf("u64 batch with meta: %v, want ErrNoItemMeta", err)
	}
	if err := u.Batch().SetItem(u64key(9), u64key(90), 0, 99).Commit(); !errors.Is(err, logfree.ErrNoItemMeta) {
		t.Fatalf("u64 batch with aux: %v, want ErrNoItemMeta", err)
	}
}

// TestBatchErrors: the taxonomy flows through Commit via errors.Is — size
// cap, bad arguments — all checked before anything applies.
func TestBatchErrors(t *testing.T) {
	rt, err := logfree.New(logfree.WithSize(64 << 20))
	if err != nil {
		t.Fatal(err)
	}
	m, err := rt.Map("b", 64)
	if err != nil {
		t.Fatal(err)
	}
	big := m.Batch()
	for i := 0; i <= logfree.MaxBatchOps; i++ {
		big.Set([]byte(fmt.Sprintf("k%05d", i)), nil)
	}
	if err := big.Commit(); !errors.Is(err, logfree.ErrBatchTooLarge) {
		t.Fatalf("oversized batch: %v", err)
	}
	if m.Len() != 0 {
		t.Fatal("oversized batch partially applied")
	}
	if err := m.Batch().Set(nil, []byte("v")).Commit(); !errors.Is(err, logfree.ErrBadKey) {
		t.Fatalf("empty key: %v", err)
	}
	if err := m.Batch().Set([]byte("k"), make([]byte, 4096)).Commit(); !errors.Is(err, logfree.ErrTooLarge) {
		t.Fatalf("oversized value: %v", err)
	}
	if m.Len() != 0 {
		t.Fatal("argument-error batch partially applied")
	}
	if err := m.Batch().Commit(); err != nil {
		t.Fatalf("empty Commit: %v", err)
	}
}

// TestErrFullTaxonomy: exhausting a tiny device surfaces ErrFull (and the
// deprecated ErrOutOfMemory cause) through the public surface, on both the
// single-op and the batch path.
func TestErrFullTaxonomy(t *testing.T) {
	rt, err := logfree.New(logfree.WithSize(1 << 20))
	if err != nil {
		t.Fatal(err)
	}
	m, err := rt.Map("full", 16)
	if err != nil {
		t.Fatal(err)
	}
	val := make([]byte, 1024)
	var setErr error
	for i := 0; i < 4096 && setErr == nil; i++ {
		setErr = m.Set([]byte(fmt.Sprintf("k%05d", i)), val)
	}
	if !errors.Is(setErr, logfree.ErrFull) {
		t.Fatalf("exhaustion error = %v, want ErrFull", setErr)
	}
	if !errors.Is(setErr, logfree.ErrOutOfMemory) {
		t.Fatalf("ErrFull must wrap the core cause: %v", setErr)
	}
	b := m.Batch()
	for i := 0; i < 64; i++ {
		b.Set([]byte(fmt.Sprintf("b%05d", i)), val)
	}
	if err := b.Commit(); !errors.Is(err, logfree.ErrFull) {
		t.Fatalf("batch exhaustion error = %v, want ErrFull", err)
	}
}

// TestBatchFenceBudgetPublic pins the amortization through the public
// surface: the same 64-replace workload costs close to half the sync waits
// batched as it does issued singly (~N+1 vs ~2N write-path waits; device
// totals also include the amortized reclamation fences both sides pay). The
// strict ≤N+2 write-path proof — counting only the operating flusher, with
// reclamation deferred — is the core-level TestFenceBudgetBatch.
func TestBatchFenceBudgetPublic(t *testing.T) {
	const N = 64
	rt, err := logfree.New(logfree.WithSize(64 << 20))
	if err != nil {
		t.Fatal(err)
	}
	m, err := rt.Map("budget", 1<<10)
	if err != nil {
		t.Fatal(err)
	}
	val := make([]byte, 64)
	key := func(i int) []byte { return []byte(fmt.Sprintf("steady-%06d", i)) }
	commitBatch := func(round int) {
		b := m.Batch()
		for i := 0; i < N; i++ {
			b.SetItem(key(i), val, uint16(round), 0)
		}
		if err := b.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	commitBatch(0) // warm-up: allocator pages, APT areas, the key set
	rt.Drain()

	rt.Device().ResetStats()
	for i := 0; i < N; i++ {
		if _, err := m.SetItem(key(i), val, 1, 0); err != nil {
			t.Fatal(err)
		}
	}
	single := rt.Device().Stats().SyncWaits

	rt.Device().ResetStats()
	commitBatch(2)
	batched := rt.Device().Stats().SyncWaits

	if single < 2*N {
		t.Fatalf("single-op baseline paid only %d sync waits for %d replaces", single, N)
	}
	if limit := N + N/8; batched > uint64(limit) {
		t.Fatalf("batched round cost %d sync waits for %d ops (single-op: %d), limit %d",
			batched, N, single, limit)
	}
}

// TestBatchCrashPrefix: a drained batch survives a crash whole; committing
// and crashing without Drain (link cache off) keeps every committed op —
// batch order is durability order.
func TestBatchCrashPrefix(t *testing.T) {
	rt, err := logfree.New(logfree.WithSize(64 << 20))
	if err != nil {
		t.Fatal(err)
	}
	om, err := rt.OrderedMap("wal")
	if err != nil {
		t.Fatal(err)
	}
	b := om.Batch()
	for i := 0; i < 100; i++ {
		b.SetItem([]byte(fmt.Sprintf("rec-%04d", i)), []byte(fmt.Sprintf("payload-%d", i)), 0, uint64(i))
	}
	if err := b.Commit(); err != nil {
		t.Fatal(err)
	}
	// No Drain: without the link cache every committed op is already
	// durable when Commit returns.
	rt2, err := rt.SimulateCrash()
	if err != nil {
		t.Fatal(err)
	}
	om2, err := rt2.OrderedMap("wal")
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	var prev []byte
	for k, it := range om2.ScanItems(nil, nil) {
		if prev != nil && bytes.Compare(prev, k) >= 0 {
			t.Fatalf("post-crash scan out of order: %q then %q", prev, k)
		}
		prev = append(prev[:0], k...)
		if want := fmt.Sprintf("payload-%d", it.Aux); string(it.Value) != want {
			t.Fatalf("%q value = %q want %q", k, it.Value, want)
		}
		n++
	}
	if n != 100 {
		t.Fatalf("recovered %d of 100 committed batch ops", n)
	}
}
