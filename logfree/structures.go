package logfree

import "repro/internal/core"

// Set is the common uint64 interface of the four durable set structures
// (§3). All methods are safe for concurrent use provided each goroutine
// uses its own Handle. These typed wrappers are thin veneers over the same
// durable directory that OpenOrCreate serves; each Runtime method below
// opens the named structure or creates it (v1's CreateX/OpenX pairs,
// unified).
type Set interface {
	// Insert adds key→value; false if the key is already present. The
	// effect is durable (or, with the link cache, flushed before any
	// dependent operation completes) when Insert returns.
	Insert(h *Handle, key, value uint64) bool
	// Upsert inserts or durably replaces in place; true if newly inserted.
	Upsert(h *Handle, key, value uint64) bool
	// Delete removes key, returning its value.
	Delete(h *Handle, key uint64) (uint64, bool)
	// Search returns the value bound to key.
	Search(h *Handle, key uint64) (uint64, bool)
	// Contains reports whether key is present.
	Contains(h *Handle, key uint64) bool
}

// List is a durable lock-free sorted linked list (Harris + link-and-persist).
type List struct{ l *core.List }

// List opens or creates the durable list registered under name.
func (r *Runtime) List(h *Handle, name string) (*List, error) {
	var made *core.List
	_, a1, a2, err := r.ensure(h, name, KindList, func() (uint64, uint64, uint64, error) {
		l, err := core.NewList(h.c)
		if err != nil {
			return 0, 0, 0, err
		}
		made = l
		return 0, l.Head(), l.Tail(), nil
	})
	if err != nil {
		return nil, err
	}
	if made != nil {
		return &List{made}, nil
	}
	return &List{core.AttachList(r.store, a1, a2)}, nil
}

// Insert implements Set.
func (l *List) Insert(h *Handle, key, value uint64) bool { return l.l.Insert(h.c, key, value) }

// Upsert implements Set.
func (l *List) Upsert(h *Handle, key, value uint64) bool { return l.l.Upsert(h.c, key, value) }

// Delete implements Set.
func (l *List) Delete(h *Handle, key uint64) (uint64, bool) { return l.l.Delete(h.c, key) }

// Search implements Set.
func (l *List) Search(h *Handle, key uint64) (uint64, bool) { return l.l.Search(h.c, key) }

// Contains implements Set.
func (l *List) Contains(h *Handle, key uint64) bool { return l.l.Contains(h.c, key) }

// Len counts live keys (quiescent use).
func (l *List) Len(h *Handle) int { return l.l.Len(h.c) }

// Range visits live entries in ascending key order (quiescent use).
func (l *List) Range(h *Handle, fn func(key, value uint64) bool) { l.l.Range(h.c, fn) }

// HashTable is a durable lock-free hash table (Harris list per bucket).
type HashTable struct{ t *core.HashTable }

// HashTable opens or creates the durable hash table registered under name.
// buckets is used only at creation (rounded up to a power of two); an
// existing table keeps its durable bucket count.
func (r *Runtime) HashTable(h *Handle, name string, buckets int) (*HashTable, error) {
	var made *core.HashTable
	aux, a1, a2, err := r.ensure(h, name, KindHashTable, func() (uint64, uint64, uint64, error) {
		t, err := core.NewHashTable(h.c, buckets)
		if err != nil {
			return 0, 0, 0, err
		}
		made = t
		return uint64(t.NumBuckets()), t.Buckets(), t.Tail(), nil
	})
	if err != nil {
		return nil, err
	}
	if made != nil {
		return &HashTable{made}, nil
	}
	return &HashTable{core.AttachHashTable(r.store, a1, int(aux), a2)}, nil
}

// Insert implements Set.
func (t *HashTable) Insert(h *Handle, key, value uint64) bool { return t.t.Insert(h.c, key, value) }

// Upsert implements Set.
func (t *HashTable) Upsert(h *Handle, key, value uint64) bool { return t.t.Upsert(h.c, key, value) }

// Delete implements Set.
func (t *HashTable) Delete(h *Handle, key uint64) (uint64, bool) { return t.t.Delete(h.c, key) }

// Search implements Set.
func (t *HashTable) Search(h *Handle, key uint64) (uint64, bool) { return t.t.Search(h.c, key) }

// Contains implements Set.
func (t *HashTable) Contains(h *Handle, key uint64) bool { return t.t.Contains(h.c, key) }

// Len counts live keys (quiescent use).
func (t *HashTable) Len(h *Handle) int { return t.t.Len(h.c) }

// Range visits live entries (unordered; quiescent use).
func (t *HashTable) Range(h *Handle, fn func(key, value uint64) bool) { t.t.Range(h.c, fn) }

// SkipList is a durable lock-free skip list (durable level 0, volatile
// index rebuilt on recovery).
type SkipList struct{ s *core.SkipList }

// SkipList opens or creates the durable skip list registered under name.
func (r *Runtime) SkipList(h *Handle, name string) (*SkipList, error) {
	var made *core.SkipList
	_, a1, a2, err := r.ensure(h, name, KindSkipList, func() (uint64, uint64, uint64, error) {
		s, err := core.NewSkipList(h.c)
		if err != nil {
			return 0, 0, 0, err
		}
		made = s
		return 0, s.Head(), s.Tail(), nil
	})
	if err != nil {
		return nil, err
	}
	if made != nil {
		return &SkipList{made}, nil
	}
	return &SkipList{core.AttachSkipList(r.store, a1, a2)}, nil
}

// Insert implements Set.
func (s *SkipList) Insert(h *Handle, key, value uint64) bool { return s.s.Insert(h.c, key, value) }

// Upsert implements Set.
func (s *SkipList) Upsert(h *Handle, key, value uint64) bool { return s.s.Upsert(h.c, key, value) }

// Delete implements Set.
func (s *SkipList) Delete(h *Handle, key uint64) (uint64, bool) { return s.s.Delete(h.c, key) }

// Search implements Set.
func (s *SkipList) Search(h *Handle, key uint64) (uint64, bool) { return s.s.Search(h.c, key) }

// Contains implements Set.
func (s *SkipList) Contains(h *Handle, key uint64) bool { return s.s.Contains(h.c, key) }

// Len counts live keys (quiescent use).
func (s *SkipList) Len(h *Handle) int { return s.s.Len(h.c) }

// Range visits live entries in ascending key order (quiescent use).
func (s *SkipList) Range(h *Handle, fn func(key, value uint64) bool) { s.s.Range(h.c, fn) }

// SeekGE returns the smallest live key >= key, with its value.
func (s *SkipList) SeekGE(h *Handle, key uint64) (k, v uint64, ok bool) {
	return s.s.SeekGE(h.c, key)
}

// Succ returns the smallest live key strictly greater than key, with its
// value; Succ(MinKey-1) is the minimum of the set.
func (s *SkipList) Succ(h *Handle, key uint64) (k, v uint64, ok bool) {
	return s.s.Succ(h.c, key)
}

// Scan visits live entries with start <= key < end in ascending key order
// (end = 0 means "through MaxKey"), positioning with the index levels
// rather than walking from the head. Safe for concurrent use (no snapshot
// semantics); fn must not call operations on the same Handle.
func (s *SkipList) Scan(h *Handle, start, end uint64, fn func(key, value uint64) bool) {
	s.s.Scan(h.c, start, end, fn)
}

// BST is a durable lock-free external binary search tree (Natarajan-Mittal).
type BST struct{ t *core.BST }

// BST opens or creates the durable BST registered under name.
func (r *Runtime) BST(h *Handle, name string) (*BST, error) {
	var made *core.BST
	_, a1, a2, err := r.ensure(h, name, KindBST, func() (uint64, uint64, uint64, error) {
		t, err := core.NewBST(h.c)
		if err != nil {
			return 0, 0, 0, err
		}
		made = t
		return 0, t.Root(), t.Sentinel(), nil
	})
	if err != nil {
		return nil, err
	}
	if made != nil {
		return &BST{made}, nil
	}
	return &BST{core.AttachBST(r.store, a1, a2)}, nil
}

// Insert implements Set.
func (t *BST) Insert(h *Handle, key, value uint64) bool { return t.t.Insert(h.c, key, value) }

// Upsert implements Set.
func (t *BST) Upsert(h *Handle, key, value uint64) bool { return t.t.Upsert(h.c, key, value) }

// Delete implements Set.
func (t *BST) Delete(h *Handle, key uint64) (uint64, bool) { return t.t.Delete(h.c, key) }

// Search implements Set.
func (t *BST) Search(h *Handle, key uint64) (uint64, bool) { return t.t.Search(h.c, key) }

// Contains implements Set.
func (t *BST) Contains(h *Handle, key uint64) bool { return t.t.Contains(h.c, key) }

// Len counts live keys (quiescent use).
func (t *BST) Len(h *Handle) int { return t.t.Len(h.c) }

// Range visits live entries in ascending key order (quiescent use).
func (t *BST) Range(h *Handle, fn func(key, value uint64) bool) { t.t.Range(h.c, fn) }

// Queue is a durable lock-free FIFO queue (Michael-Scott with
// link-and-persist) — the paper's techniques applied beyond the set
// abstraction.
type Queue struct{ q *core.Queue }

// Queue opens or creates the durable queue registered under name.
func (r *Runtime) Queue(h *Handle, name string) (*Queue, error) {
	var made *core.Queue
	_, a1, _, err := r.ensure(h, name, KindQueue, func() (uint64, uint64, uint64, error) {
		q, err := core.NewQueue(h.c)
		if err != nil {
			return 0, 0, 0, err
		}
		made = q
		return 0, q.Descriptor(), 0, nil
	})
	if err != nil {
		return nil, err
	}
	if made != nil {
		return &Queue{made}, nil
	}
	return &Queue{core.AttachQueue(r.store, a1)}, nil
}

// Enqueue appends value; durable when it returns (or when the link cache
// flushes, under deferred completion).
func (q *Queue) Enqueue(h *Handle, value uint64) { q.q.Enqueue(h.c, value) }

// Dequeue removes and returns the oldest value.
func (q *Queue) Dequeue(h *Handle) (uint64, bool) { return q.q.Dequeue(h.c) }

// Peek returns the oldest value without removing it.
func (q *Queue) Peek(h *Handle) (uint64, bool) { return q.q.Peek(h.c) }

// Len counts queued values (quiescent use).
func (q *Queue) Len(h *Handle) int { return q.q.Len(h.c) }

// Stack is a durable lock-free LIFO stack (Treiber + link-and-persist).
type Stack struct{ st *core.Stack }

// Stack opens or creates the durable stack registered under name.
func (r *Runtime) Stack(h *Handle, name string) (*Stack, error) {
	var made *core.Stack
	_, a1, _, err := r.ensure(h, name, KindStack, func() (uint64, uint64, uint64, error) {
		st, err := core.NewStack(h.c)
		if err != nil {
			return 0, 0, 0, err
		}
		made = st
		return 0, st.Descriptor(), 0, nil
	})
	if err != nil {
		return nil, err
	}
	if made != nil {
		return &Stack{made}, nil
	}
	return &Stack{core.AttachStack(r.store, a1)}, nil
}

// Push adds value (durably linearizable).
func (s *Stack) Push(h *Handle, value uint64) { s.st.Push(h.c, value) }

// Pop removes and returns the most recent value.
func (s *Stack) Pop(h *Handle) (uint64, bool) { return s.st.Pop(h.c) }

// Peek returns the top value without removing it.
func (s *Stack) Peek(h *Handle) (uint64, bool) { return s.st.Peek(h.c) }

// Len counts entries (quiescent use).
func (s *Stack) Len(h *Handle) int { return s.st.Len(h.c) }
