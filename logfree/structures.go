package logfree

import (
	"iter"

	"repro/internal/core"
)

// Set is the common uint64 interface of the four durable set structures
// (§3). All methods are safe for concurrent use from any goroutine
// (implicit sessions). These typed wrappers are thin veneers over the same
// durable directory that OpenOrCreate serves; each Runtime method below
// opens the named structure or creates it.
type Set interface {
	// Insert adds key→value; false if the key is already present. The
	// effect is durable (or, with the link cache, flushed before any
	// dependent operation completes) when Insert returns.
	Insert(key, value uint64) bool
	// Upsert inserts or durably replaces in place; true if newly inserted.
	Upsert(key, value uint64) bool
	// Delete removes key, returning its value.
	Delete(key uint64) (uint64, bool)
	// Search returns the value bound to key.
	Search(key uint64) (uint64, bool)
	// Contains reports whether key is present.
	Contains(key uint64) bool
}

// u64Veneer is the shared implementation of the four keyed uint64 veneers:
// a core structure driven through the runtime's session pool (or a pinned
// session).
type u64Veneer struct {
	binding
	m u64core
}

// Insert implements Set.
func (v *u64Veneer) Insert(key, value uint64) bool {
	c, s := v.begin()
	defer v.end(s)
	return v.m.Insert(c, key, value)
}

// Upsert implements Set.
func (v *u64Veneer) Upsert(key, value uint64) bool {
	c, s := v.begin()
	defer v.end(s)
	return v.m.Upsert(c, key, value)
}

// Delete implements Set.
func (v *u64Veneer) Delete(key uint64) (uint64, bool) {
	c, s := v.begin()
	defer v.end(s)
	return v.m.Delete(c, key)
}

// Search implements Set.
func (v *u64Veneer) Search(key uint64) (uint64, bool) {
	c, s := v.begin()
	defer v.end(s)
	return v.m.Search(c, key)
}

// Contains implements Set.
func (v *u64Veneer) Contains(key uint64) bool {
	c, s := v.begin()
	defer v.end(s)
	return v.m.Contains(c, key)
}

// Len counts live keys (quiescent use).
func (v *u64Veneer) Len() int {
	c, s := v.begin()
	defer v.end(s)
	return v.m.Len(c)
}

// All iterates live entries (range-over-func; quiescent use — for the
// ordered structures iteration is in ascending key order, for the hash
// table unordered).
func (v *u64Veneer) All() iter.Seq2[uint64, uint64] {
	return func(yield func(uint64, uint64) bool) {
		c, s := v.begin()
		defer v.end(s)
		v.m.Range(c, yield)
	}
}

// List is a durable lock-free sorted linked list (Harris + link-and-persist).
type List struct {
	u64Veneer
	l *core.List
}

// List opens or creates the durable list registered under name.
func (r *Runtime) List(name string) (*List, error) {
	c, s, err := binding{rt: r}.beginErr()
	if err != nil {
		return nil, err
	}
	defer r.release(s)
	var made *core.List
	_, a1, a2, err := r.ensure(c, name, KindList, func() (uint64, uint64, uint64, error) {
		l, err := core.NewList(c)
		if err != nil {
			return 0, 0, 0, err
		}
		made = l
		return 0, l.Head(), l.Tail(), nil
	})
	if err != nil {
		return nil, wrapErr(err)
	}
	if made == nil {
		made = core.AttachList(r.store, a1, a2)
	}
	return &List{u64Veneer{binding{rt: r}, made}, made}, nil
}

// WithSession returns a view of the list whose operations all run on the
// pinned session s; see ByteMap.WithSession.
func (l *List) WithSession(s *Session) *List {
	cp := *l
	cp.pin = s
	return &cp
}

// HashTable is a durable lock-free hash table (Harris list per bucket).
type HashTable struct {
	u64Veneer
	t *core.HashTable
}

// HashTable opens or creates the durable hash table registered under name.
// buckets is used only at creation (rounded up to a power of two); an
// existing table keeps its durable bucket count.
func (r *Runtime) HashTable(name string, buckets int) (*HashTable, error) {
	c, s, err := binding{rt: r}.beginErr()
	if err != nil {
		return nil, err
	}
	defer r.release(s)
	var made *core.HashTable
	aux, a1, a2, err := r.ensure(c, name, KindHashTable, func() (uint64, uint64, uint64, error) {
		t, err := core.NewHashTable(c, buckets)
		if err != nil {
			return 0, 0, 0, err
		}
		made = t
		return uint64(t.NumBuckets()), t.Buckets(), t.Tail(), nil
	})
	if err != nil {
		return nil, wrapErr(err)
	}
	if made == nil {
		made = core.AttachHashTable(r.store, a1, int(aux), a2)
	}
	return &HashTable{u64Veneer{binding{rt: r}, made}, made}, nil
}

// WithSession returns a view of the table whose operations all run on the
// pinned session s; see ByteMap.WithSession.
func (t *HashTable) WithSession(s *Session) *HashTable {
	cp := *t
	cp.pin = s
	return &cp
}

// SkipList is a durable lock-free skip list (durable level 0, volatile
// index rebuilt on recovery).
type SkipList struct {
	u64Veneer
	s *core.SkipList
}

// SkipList opens or creates the durable skip list registered under name.
func (r *Runtime) SkipList(name string) (*SkipList, error) {
	c, s, err := binding{rt: r}.beginErr()
	if err != nil {
		return nil, err
	}
	defer r.release(s)
	var made *core.SkipList
	_, a1, a2, err := r.ensure(c, name, KindSkipList, func() (uint64, uint64, uint64, error) {
		sl, err := core.NewSkipList(c)
		if err != nil {
			return 0, 0, 0, err
		}
		made = sl
		return 0, sl.Head(), sl.Tail(), nil
	})
	if err != nil {
		return nil, wrapErr(err)
	}
	if made == nil {
		made = core.AttachSkipList(r.store, a1, a2)
	}
	return &SkipList{u64Veneer{binding{rt: r}, made}, made}, nil
}

// WithSession returns a view of the skip list whose operations all run on
// the pinned session s; see ByteMap.WithSession.
func (s *SkipList) WithSession(sess *Session) *SkipList {
	cp := *s
	cp.pin = sess
	return &cp
}

// SeekGE returns the smallest live key >= key, with its value.
func (s *SkipList) SeekGE(key uint64) (k, v uint64, ok bool) {
	c, sess := s.begin()
	defer s.end(sess)
	return s.s.SeekGE(c, key)
}

// Succ returns the smallest live key strictly greater than key, with its
// value; Succ(MinKey-1) is the minimum of the set.
func (s *SkipList) Succ(key uint64) (k, v uint64, ok bool) {
	c, sess := s.begin()
	defer s.end(sess)
	return s.s.Succ(c, key)
}

// Scan iterates live entries with start <= key < end in ascending key order
// (end = 0 means "through MaxKey"), positioning with the index levels
// rather than walking from the head. Safe for concurrent use (no snapshot
// semantics); see Map.All for the loop-body contract.
func (s *SkipList) Scan(start, end uint64) iter.Seq2[uint64, uint64] {
	return func(yield func(uint64, uint64) bool) {
		c, sess := s.begin()
		defer s.end(sess)
		s.s.Scan(c, start, end, yield)
	}
}

// BST is a durable lock-free external binary search tree (Natarajan-Mittal).
type BST struct {
	u64Veneer
	t *core.BST
}

// BST opens or creates the durable BST registered under name.
func (r *Runtime) BST(name string) (*BST, error) {
	c, s, err := binding{rt: r}.beginErr()
	if err != nil {
		return nil, err
	}
	defer r.release(s)
	var made *core.BST
	_, a1, a2, err := r.ensure(c, name, KindBST, func() (uint64, uint64, uint64, error) {
		t, err := core.NewBST(c)
		if err != nil {
			return 0, 0, 0, err
		}
		made = t
		return 0, t.Root(), t.Sentinel(), nil
	})
	if err != nil {
		return nil, wrapErr(err)
	}
	if made == nil {
		made = core.AttachBST(r.store, a1, a2)
	}
	return &BST{u64Veneer{binding{rt: r}, made}, made}, nil
}

// WithSession returns a view of the tree whose operations all run on the
// pinned session s; see ByteMap.WithSession.
func (t *BST) WithSession(s *Session) *BST {
	cp := *t
	cp.pin = s
	return &cp
}

// Queue is a durable lock-free FIFO queue (Michael-Scott with
// link-and-persist) — the paper's techniques applied beyond the set
// abstraction.
type Queue struct {
	binding
	q *core.Queue
}

// Queue opens or creates the durable queue registered under name.
func (r *Runtime) Queue(name string) (*Queue, error) {
	c, s, err := binding{rt: r}.beginErr()
	if err != nil {
		return nil, err
	}
	defer r.release(s)
	var made *core.Queue
	_, a1, _, err := r.ensure(c, name, KindQueue, func() (uint64, uint64, uint64, error) {
		q, err := core.NewQueue(c)
		if err != nil {
			return 0, 0, 0, err
		}
		made = q
		return 0, q.Descriptor(), 0, nil
	})
	if err != nil {
		return nil, wrapErr(err)
	}
	if made == nil {
		made = core.AttachQueue(r.store, a1)
	}
	return &Queue{binding{rt: r}, made}, nil
}

// WithSession returns a view of the queue whose operations all run on the
// pinned session s; see ByteMap.WithSession.
func (q *Queue) WithSession(s *Session) *Queue {
	cp := *q
	cp.pin = s
	return &cp
}

// Enqueue appends value; durable when it returns (or when the link cache
// flushes, under deferred completion).
func (q *Queue) Enqueue(value uint64) {
	c, s := q.begin()
	defer q.end(s)
	q.q.Enqueue(c, value)
}

// Dequeue removes and returns the oldest value.
func (q *Queue) Dequeue() (uint64, bool) {
	c, s := q.begin()
	defer q.end(s)
	return q.q.Dequeue(c)
}

// Peek returns the oldest value without removing it.
func (q *Queue) Peek() (uint64, bool) {
	c, s := q.begin()
	defer q.end(s)
	return q.q.Peek(c)
}

// Len counts queued values (quiescent use).
func (q *Queue) Len() int {
	c, s := q.begin()
	defer q.end(s)
	return q.q.Len(c)
}

// Stack is a durable lock-free LIFO stack (Treiber + link-and-persist).
type Stack struct {
	binding
	st *core.Stack
}

// Stack opens or creates the durable stack registered under name.
func (r *Runtime) Stack(name string) (*Stack, error) {
	c, s, err := binding{rt: r}.beginErr()
	if err != nil {
		return nil, err
	}
	defer r.release(s)
	var made *core.Stack
	_, a1, _, err := r.ensure(c, name, KindStack, func() (uint64, uint64, uint64, error) {
		st, err := core.NewStack(c)
		if err != nil {
			return 0, 0, 0, err
		}
		made = st
		return 0, st.Descriptor(), 0, nil
	})
	if err != nil {
		return nil, wrapErr(err)
	}
	if made == nil {
		made = core.AttachStack(r.store, a1)
	}
	return &Stack{binding{rt: r}, made}, nil
}

// WithSession returns a view of the stack whose operations all run on the
// pinned session s; see ByteMap.WithSession.
func (s *Stack) WithSession(sess *Session) *Stack {
	cp := *s
	cp.pin = sess
	return &cp
}

// Push adds value (durably linearizable).
func (s *Stack) Push(value uint64) {
	c, sess := s.begin()
	defer s.end(sess)
	s.st.Push(c, value)
}

// Pop removes and returns the most recent value.
func (s *Stack) Pop() (uint64, bool) {
	c, sess := s.begin()
	defer s.end(sess)
	return s.st.Pop(c)
}

// Peek returns the top value without removing it.
func (s *Stack) Peek() (uint64, bool) {
	c, sess := s.begin()
	defer s.end(sess)
	return s.st.Peek(c)
}

// Len counts entries (quiescent use).
func (s *Stack) Len() int {
	c, sess := s.begin()
	defer s.end(sess)
	return s.st.Len(c)
}
