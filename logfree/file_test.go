package logfree

// File-backed runtimes: WithFile/WithBackend open-or-recover semantics and
// the kill -9 contract — everything acknowledged before an abrupt process
// death is present after reopening the backing file, with no image save.

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/nvram"
)

func fileKey(i int) []byte { return []byte(fmt.Sprintf("key-%04d", i)) }
func fileVal(i int) []byte { return []byte(fmt.Sprintf("val-%04d", i)) }

// TestFileRuntimeAbandonRecover is the in-process kill -9 analogue: the
// first runtime is never closed or saved — the backing file must still hold
// every completed write when a second runtime opens it.
func TestFileRuntimeAbandonRecover(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rt.pmem")
	rt, err := New(WithFile(path), WithSize(16<<20))
	if err != nil {
		t.Fatal(err)
	}
	if rt.Recovered() {
		t.Fatal("fresh file reported recovered")
	}
	m, err := rt.Map("kv", 256)
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	for i := 0; i < n; i++ {
		if err := m.Set(fileKey(i), fileVal(i)); err != nil {
			t.Fatal(err)
		}
	}
	// No Close, no Save: abandon rt as a kill -9 would (dropping the
	// single-owner file lock the way a process death does).
	if err := rt.Device().Backend().(*nvram.FileBackend).Abandon(); err != nil {
		t.Fatal(err)
	}

	rt2, err := New(WithFile(path)) // size adopted from the file
	if err != nil {
		t.Fatal(err)
	}
	if !rt2.Recovered() {
		t.Fatal("populated file not recovered")
	}
	m2, err := rt2.Map("kv", 256)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		v, ok := m2.Get(fileKey(i))
		if !ok || string(v) != string(fileVal(i)) {
			t.Fatalf("key %d after abandon+reopen: %q,%v", i, v, ok)
		}
	}
	if err := rt2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestFileRuntimeCrashThenReopen chains both failure models: an in-process
// power failure (SimulateCrash) followed by a cross-"process" reopen of the
// backing file.
func TestFileRuntimeCrashThenReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rt.pmem")
	rt, err := New(WithFile(path), WithSize(16<<20))
	if err != nil {
		t.Fatal(err)
	}
	om, err := rt.OrderedMap("board")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := om.Set(fileKey(i), fileVal(i)); err != nil {
			t.Fatal(err)
		}
	}
	rt2, err := rt.SimulateCrash()
	if err != nil {
		t.Fatal(err)
	}
	om2, err := rt2.OrderedMap("board")
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := om2.Get(fileKey(42)); !ok || string(v) != "val-0042" {
		t.Fatalf("post-crash get: %q,%v", v, ok)
	}
	if err := rt2.Close(); err != nil {
		t.Fatal(err)
	}

	rt3, err := New(WithFile(path))
	if err != nil {
		t.Fatal(err)
	}
	om3, err := rt3.OrderedMap("board")
	if err != nil {
		t.Fatal(err)
	}
	prev := ""
	count := 0
	for k, v := range om3.Ascend() {
		if prev != "" && !(prev < string(k)) {
			t.Fatalf("scan out of order after reopen: %q then %q", prev, k)
		}
		prev = string(k)
		want := "val-" + strings.TrimPrefix(string(k), "key-")
		if string(v) != want {
			t.Fatalf("value mismatch after reopen: %q=%q", k, v)
		}
		count++
	}
	if count != 100 {
		t.Fatalf("reopened scan found %d keys, want 100", count)
	}
	if err := rt3.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestWithBackendOpenOrRecover: a caller-constructed backend holding a
// formatted pool is recovered, not reformatted.
func TestWithBackendOpenOrRecover(t *testing.T) {
	b := nvram.NewMemBackend(16 << 20)
	rt, err := New(WithBackend(b))
	if err != nil {
		t.Fatal(err)
	}
	if rt.Recovered() {
		t.Fatal("fresh backend reported recovered")
	}
	m, _ := rt.Map("kv", 64)
	if err := m.Set([]byte("a"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}

	rt2, err := New(WithBackend(b))
	if err != nil {
		t.Fatal(err)
	}
	if !rt2.Recovered() {
		t.Fatal("populated backend not recovered")
	}
	m2, _ := rt2.Map("kv", 64)
	if v, ok := m2.Get([]byte("a")); !ok || string(v) != "1" {
		t.Fatalf("backend round trip: %q,%v", v, ok)
	}
}

// TestFileOptionValidation: size mismatches and invalid option combinations
// fail loudly instead of silently reformatting someone's data.
func TestFileOptionValidation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rt.pmem")
	rt, err := New(WithFile(path), WithSize(16<<20))
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}

	if _, err := New(WithFile(path), WithSize(32<<20)); err == nil ||
		!strings.Contains(err.Error(), "formatted for") {
		t.Fatalf("size mismatch = %v, want formatted-for error", err)
	}
	if _, err := New(WithFile(path), WithBackend(nvram.NewMemBackend(1<<20))); err == nil {
		t.Fatal("WithFile+WithBackend accepted")
	}
	if _, err := New(WithFile(path), WithVolatile(true)); err == nil {
		t.Fatal("WithFile+WithVolatile accepted")
	}
}
