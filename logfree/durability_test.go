package logfree

// The v4 durability surface: DeviceSpec constructors, ParseDurability, the
// policy-derived link-cache rule, deprecated-shim equivalence, runtimes on
// every device kind under every policy, and the buffered flush timer.

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/nvram"
)

func TestDeviceSpecConstructors(t *testing.T) {
	if MemDevice().Kind != DeviceMem {
		t.Fatal("MemDevice kind")
	}
	if d := FileDevice("/x"); d.Kind != DeviceFile || d.Path != "/x" {
		t.Fatalf("FileDevice = %+v", d)
	}
	if d := DAXDevice("/x"); d.Kind != DeviceDAX || d.Path != "/x" {
		t.Fatalf("DAXDevice = %+v", d)
	}
	// Empty/nil specs collapse to MemDevice so conditional wiring composes.
	for name, d := range map[string]DeviceSpec{
		"file-empty": FileDevice(""), "dax-empty": DAXDevice(""), "backend-nil": BackendDevice(nil),
	} {
		if d.Kind != DeviceMem {
			t.Errorf("%s: kind = %v, want mem", name, d.Kind)
		}
	}
	for k, want := range map[DeviceKind]string{
		DeviceMem: "mem", DeviceFile: "file", DeviceDAX: "dax", DeviceBackend: "backend",
	} {
		if got := k.String(); got != want {
			t.Errorf("DeviceKind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestParseDurability(t *testing.T) {
	for in, want := range map[string]Durability{
		"":               Synced(),
		"synced":         Synced(),
		"strict":         Strict(),
		"buffered":       Buffered(0),
		"buffered:250ms": Buffered(250 * time.Millisecond),
	} {
		got, err := ParseDurability(in)
		if err != nil || got != want {
			t.Errorf("ParseDurability(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	for _, bad := range []string{"eventual", "buffered:", "buffered:bogus", "buffered:-5ms", "buffered:0s"} {
		if _, err := ParseDurability(bad); err == nil {
			t.Errorf("ParseDurability(%q) succeeded", bad)
		}
	}
	// The flag round-trip: String() of a parsed policy re-parses to itself.
	for _, s := range []string{"strict", "synced", "buffered:250ms"} {
		p, _ := ParseDurability(s)
		rt, err := ParseDurability(p.String())
		if err != nil || rt != p {
			t.Errorf("round-trip %q -> %q -> %v, %v", s, p, rt, err)
		}
	}
	if got := Buffered(0).MaxStaleness(); got != nvram.DefaultMaxStaleness {
		t.Errorf("Buffered(0).MaxStaleness() = %v, want default %v", got, nvram.DefaultMaxStaleness)
	}
	if got := Strict().MaxStaleness(); got != 0 {
		t.Errorf("Strict().MaxStaleness() = %v, want 0", got)
	}
}

// The link cache is derived from device+policy: always honored on volatile
// substrates, and on durable ones only under Buffered — whose flush timer
// bounds the volatile links' exposure.
func TestEffectiveLinkCacheRule(t *testing.T) {
	cases := []struct {
		name string
		opts []Option
		want bool
	}{
		{"mem", []Option{WithLinkCache(true)}, true},
		{"volatile", []Option{WithLinkCache(true), WithVolatile(true)}, true},
		{"file-synced", []Option{WithLinkCache(true), WithDevice(FileDevice("/x"))}, false},
		{"file-strict", []Option{WithLinkCache(true), WithDevice(FileDevice("/x")), WithDurability(Strict())}, false},
		{"file-buffered", []Option{WithLinkCache(true), WithDevice(FileDevice("/x")), WithDurability(Buffered(0))}, true},
		{"dax-synced", []Option{WithLinkCache(true), WithDevice(DAXDevice("/x"))}, false},
		{"dax-buffered", []Option{WithLinkCache(true), WithDevice(DAXDevice("/x")), WithDurability(Buffered(0))}, true},
		{"not-requested", []Option{WithDevice(FileDevice("/x")), WithDurability(Buffered(0))}, false},
	}
	for _, tc := range cases {
		cfg := buildConfig(tc.opts)
		if got := cfg.effectiveLinkCache(); got != tc.want {
			t.Errorf("%s: effectiveLinkCache = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// Every durability policy over a file device: write, reopen (abandoned, not
// closed — the kill -9 analogue), verify. The acknowledged-operation
// contract for process crashes is identical across policies; they differ
// only in machine-crash exposure, which an in-process test cannot model.
func TestFileDeviceAllPolicies(t *testing.T) {
	for _, tc := range []struct {
		name   string
		policy Durability
	}{
		{"strict", Strict()},
		{"synced", Synced()},
		{"buffered", Buffered(2 * time.Millisecond)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "rt.pmem")
			rt, err := New(WithDevice(FileDevice(path)), WithDurability(tc.policy), WithSize(8<<20))
			if err != nil {
				t.Fatal(err)
			}
			m, err := rt.Map("kv", 64)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 50; i++ {
				if err := m.Set(fileKey(i), fileVal(i)); err != nil {
					t.Fatal(err)
				}
			}
			// Abandon without Close — the kill -9 analogue. The buffered
			// flush timer must stop first: in-process its goroutine would
			// fault on the unmapped image (a real SIGKILL takes the whole
			// process with it).
			rt.stopFlushTimer()
			if err := rt.Device().Backend().(*nvram.FileBackend).Abandon(); err != nil {
				t.Fatal(err)
			}

			rt2, err := New(WithDevice(FileDevice(path)), WithDurability(tc.policy))
			if err != nil {
				t.Fatal(err)
			}
			defer rt2.Close()
			if !rt2.Recovered() {
				t.Fatal("reopen did not recover")
			}
			m2, err := rt2.Map("kv", 64)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 50; i++ {
				if v, ok := m2.Get(fileKey(i)); !ok || string(v) != string(fileVal(i)) {
					t.Fatalf("key %d lost across %s reopen: %q, %v", i, tc.name, v, ok)
				}
			}
		})
	}
}

// A DAX-device runtime: same open-or-recover contract as the file device
// (the two share the backing image format), flushing lines with CLWB/SFENCE
// instead of msync.
func TestDAXDeviceRuntime(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rt.pmem")
	rt, err := New(WithDevice(DAXDevice(path)), WithDurability(Strict()), WithSize(8<<20))
	if err != nil {
		t.Fatal(err)
	}
	m, err := rt.Map("kv", 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := m.Set(fileKey(i), fileVal(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}

	// A file-backend reopen of the DAX image: device kinds are a property of
	// the open, not the image.
	rt2, err := New(WithDevice(FileDevice(path)))
	if err != nil {
		t.Fatal(err)
	}
	defer rt2.Close()
	if !rt2.Recovered() {
		t.Fatal("file reopen of dax image did not recover")
	}
	m2, err := rt2.Map("kv", 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if v, ok := m2.Get(fileKey(i)); !ok || string(v) != string(fileVal(i)) {
			t.Fatalf("key %d lost crossing dax->file: %q, %v", i, v, ok)
		}
	}
}

// Deprecated shims must keep compiling and behave like their WithDevice /
// WithDurability replacements.
func TestDeprecatedOptionShims(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rt.pmem")
	rt, err := New(WithFile(path), WithFileSync(true), WithSize(8<<20))
	if err != nil {
		t.Fatal(err)
	}
	if rt.cfg.device.Kind != DeviceFile || !rt.cfg.durability.IsStrict() {
		t.Fatalf("WithFile+WithFileSync(true) -> %v/%v, want file/strict",
			rt.cfg.device.Kind, rt.cfg.durability)
	}
	m, _ := rt.Map("kv", 64)
	if err := m.Set([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}

	// The new options reopen a shim-created image.
	rt2, err := New(WithDevice(FileDevice(path)), WithDurability(Strict()))
	if err != nil {
		t.Fatal(err)
	}
	defer rt2.Close()
	m2, _ := rt2.Map("kv", 64)
	if v, ok := m2.Get([]byte("k")); !ok || string(v) != "v" {
		t.Fatalf("shim image lost under new options: %q, %v", v, ok)
	}

	// WithFileSync(false) is a no-op so it composes with an explicit policy
	// regardless of option order.
	cfg := buildConfig([]Option{WithDurability(Buffered(time.Second)), WithFileSync(false)})
	if !cfg.durability.IsBuffered() {
		t.Fatalf("WithFileSync(false) clobbered an explicit policy: %v", cfg.durability)
	}

	// The historical WithFile+WithBackend conflict diagnostic survives.
	mem := nvram.NewMemBackend(1 << 16)
	if _, err := New(WithFile(filepath.Join(t.TempDir(), "x.pmem")), WithBackend(mem)); err == nil ||
		!strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("WithFile+WithBackend err = %v, want mutually exclusive", err)
	}
}

// Buffered on a durable device enables the link cache and starts the flush
// timer; acked writes older than MaxStaleness must survive SimulateCrash
// because the timer already flushed their links.
func TestBufferedFlushTimerBoundsStaleness(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rt.pmem")
	const staleness = 5 * time.Millisecond
	rt, err := New(WithDevice(FileDevice(path)), WithDurability(Buffered(staleness)),
		WithLinkCache(true), WithSize(8<<20))
	if err != nil {
		t.Fatal(err)
	}
	m, err := rt.Map("kv", 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := m.Set(fileKey(i), fileVal(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Far beyond the staleness bound: the background timer must have flushed
	// the link cache by now, so the crash can lose nothing.
	time.Sleep(20 * staleness)

	rt2, err := rt.SimulateCrash()
	if err != nil {
		t.Fatal(err)
	}
	defer rt2.Close()
	m2, err := rt2.Map("kv", 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if v, ok := m2.Get(fileKey(i)); !ok || string(v) != string(fileVal(i)) {
			t.Fatalf("acked write %d older than MaxStaleness lost in crash: %q, %v", i, v, ok)
		}
	}
}
