package logfree_test

// Concurrency torture for the byte-key maps: N goroutines hammer
// overlapping keys through the implicit session pool (no per-thread
// plumbing at all) while a scanning goroutine iterates continuously. Run
// under `go test -race`. The scans must never observe a torn entry (every
// value carries its key as a prefix, written atomically with the key) and,
// for the ordered map, never observe keys out of ascending byte order.

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/logfree"
)

// raceOps is sized so the default `-race -short` CI lane stays quick.
func raceOps() int {
	if testing.Short() {
		return 1500
	}
	return 6000
}

const raceWriters = 4

// hammer drives one writer goroutine's op mix over a small overlapping key
// pool. Values embed the key and a sequence number so a torn read is
// detectable as a key/value mismatch.
func hammer(t *testing.T, m logfree.Map, w int) {
	rng := rand.New(rand.NewSource(int64(w) * 31))
	for i := 0; i < raceOps(); i++ {
		key := []byte(fmt.Sprintf("key-%02d", rng.Intn(32)))
		switch rng.Intn(5) {
		case 0, 1:
			val := append(append([]byte(nil), key...), []byte(fmt.Sprintf("#%d.%d", w, i))...)
			if err := m.Set(key, val); err != nil {
				t.Error(err)
				return
			}
		case 2:
			m.Delete(key)
		case 3:
			// Batch commits race against single ops and scans too.
			b := m.Batch()
			for j := 0; j < 4; j++ {
				k := []byte(fmt.Sprintf("key-%02d", rng.Intn(32)))
				b.Set(k, append(append([]byte(nil), k...), []byte(fmt.Sprintf("#b%d.%d.%d", w, i, j))...))
			}
			if err := b.Commit(); err != nil {
				t.Error(err)
				return
			}
		default:
			if v, ok := m.Get(key); ok && !bytes.HasPrefix(v, key) {
				t.Errorf("torn get for %q: %q", key, v)
				return
			}
		}
	}
}

// runRace spins writers + one scanner until the writers finish.
func runRace(t *testing.T, m logfree.Map, ordered bool) {
	var wg sync.WaitGroup
	var stop atomic.Bool
	for w := 0; w < raceWriters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			hammer(t, m, w)
		}(w)
	}
	go func() { wg.Wait(); stop.Store(true) }()

	scans := 0
	// At least one full scan always runs, even if the writers finish before
	// the scanner gets scheduled (on a single-CPU host fast writers can beat
	// the scanner to completion).
	for done := false; !done; {
		done = stop.Load()
		var prev []byte
		for k, v := range m.All() {
			if ordered && prev != nil && bytes.Compare(prev, k) >= 0 {
				t.Errorf("scan out of order: %q then %q", prev, k)
				break
			}
			if !bytes.HasPrefix(v, k) {
				t.Errorf("torn scan entry: key %q value %q", k, v)
				break
			}
			prev = append(prev[:0], k...)
		}
		scans++
		if t.Failed() {
			return
		}
	}
	if scans == 0 {
		t.Fatal("scanner never ran")
	}
}

func TestRaceByteMap(t *testing.T) {
	rt, err := logfree.New(
		logfree.WithSize(128<<20),
		logfree.WithMaxThreads(raceWriters+2),
		logfree.WithLinkCache(true))
	if err != nil {
		t.Fatal(err)
	}
	m, err := rt.OpenOrCreate("race-map", logfree.Spec{Buckets: 64})
	if err != nil {
		t.Fatal(err)
	}
	runRace(t, m, false)
}

func TestRaceOrderedMap(t *testing.T) {
	rt, err := logfree.New(
		logfree.WithSize(128<<20),
		logfree.WithMaxThreads(raceWriters+2),
		logfree.WithLinkCache(true))
	if err != nil {
		t.Fatal(err)
	}
	m, err := rt.OpenOrCreate("race-ordered",
		logfree.Spec{Kind: logfree.KindOrderedMap})
	if err != nil {
		t.Fatal(err)
	}
	runRace(t, m, true)

	// Quiescent cross-check: the surviving keys scan in strict order and
	// agree with point reads.
	om := m.(logfree.OrderedMap)
	var prev []byte
	for k, v := range om.Ascend() {
		if prev != nil && bytes.Compare(prev, k) >= 0 {
			t.Fatalf("final scan out of order: %q then %q", prev, k)
		}
		prev = append(prev[:0], k...)
		got, ok := om.Get(k)
		if !ok || !bytes.Equal(got, v) {
			t.Fatalf("final scan/get disagree on %q", k)
		}
	}
}

// TestRaceOrderedMapScanWindow hammers a narrow window of keys while a
// scanner repeatedly reads a sub-range, the pattern an expiry sweep or
// leaderboard page uses.
func TestRaceOrderedMapScanWindow(t *testing.T) {
	rt, err := logfree.New(
		logfree.WithSize(128<<20),
		logfree.WithMaxThreads(raceWriters+2),
		logfree.WithLinkCache(true))
	if err != nil {
		t.Fatal(err)
	}
	om, err := rt.OrderedMap("race-window")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var stop atomic.Bool
	for w := 0; w < raceWriters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			hammer(t, om, w)
		}(w)
	}
	go func() { wg.Wait(); stop.Store(true) }()
	lo, hi := []byte("key-08"), []byte("key-24")
	for !stop.Load() {
		var prev []byte
		for k, v := range om.Scan(lo, hi) {
			if bytes.Compare(k, lo) < 0 || bytes.Compare(k, hi) >= 0 {
				t.Errorf("scan escaped [%q,%q): %q", lo, hi, k)
				break
			}
			if prev != nil && bytes.Compare(prev, k) >= 0 {
				t.Errorf("window scan out of order: %q then %q", prev, k)
				break
			}
			if !bytes.HasPrefix(v, k) {
				t.Errorf("torn window entry: %q -> %q", k, v)
				break
			}
			prev = append(prev[:0], k...)
		}
		if t.Failed() {
			return
		}
	}
}
